//! Cluster state: nodes, the disaggregated-memory ledger, and the
//! lend/borrow accounting rules of the static and dynamic policies.
//!
//! Every node owns `capacity_mb` of DRAM. At any instant it splits into
//!
//! * `local_alloc_mb` — allocated to the job running *on this node*,
//! * `lent_mb` — lent to jobs running on *other* nodes, and
//! * free memory (`capacity − local_alloc − lent`).
//!
//! Node allocation is exclusive: a node runs at most one job (paper §2.1),
//! but it can lend spare memory while running one. A node that has lent
//! more than `lend_cap_fraction` of its capacity temporarily becomes a
//! *memory node*: it keeps lending but accepts no new jobs until enough
//! borrowed memory is returned.
//!
//! All mutations go through checked operations that preserve the ledger
//! invariants; `debug_assert!`ed globally by [`Cluster::check_invariants`].
//!
//! To keep the scheduler hot path free of O(N) scans, the cluster
//! maintains two persistent indexes updated incrementally by every
//! mutation: a sorted set of schedulable nodes keyed by free memory
//! (serving best-fit placement directly) and the lender pool of all
//! nodes with free memory. Both store node ids ascending within each
//! free-memory bucket, so forward iteration yields `(free asc, id asc)`
//! and reverse bucket iteration yields `(free desc, id asc)` — exactly
//! the two orders the placement policy sorts by, which keeps indexed
//! placement bit-identical to the reference scan implementation.

use crate::error::CoreError;
use crate::job::JobId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Checked ledger addition: MB counters must never wrap, even under
/// fault-driven churn (crash evacuation, degrade/restore cycles).
#[inline]
fn mb_add(a: u64, b: u64) -> u64 {
    a.checked_add(b)
        .unwrap_or_else(|| panic!("MB ledger overflow: {a} + {b}"))
}

/// Checked ledger subtraction: an underflow means a release without a
/// matching reservation — fail loudly instead of wrapping to ~2^64 MB.
#[inline]
fn mb_sub(a: u64, b: u64) -> u64 {
    a.checked_sub(b)
        .unwrap_or_else(|| panic!("MB ledger underflow: {a} - {b}"))
}

/// Index of a node in the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// The normal/large node capacity split of a simulated system (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryMix {
    /// Capacity of a normal node in MB.
    pub normal_mb: u64,
    /// Capacity of a large node in MB (double the normal capacity in the
    /// paper's configurations).
    pub large_mb: u64,
    /// Fraction of nodes that are large, in `[0, 1]`.
    pub large_fraction: f64,
}

impl MemoryMix {
    /// Capacity of a fully provisioned (large, 128 GB) node in MB; the
    /// normalisation constant for the "total system memory %" axis.
    pub const FULL_NODE_MB: u64 = 128 * 1024;

    /// Create a mix. `large_fraction` is clamped to `[0,1]`.
    pub fn new(normal_mb: u64, large_mb: u64, large_fraction: f64) -> Self {
        assert!(normal_mb > 0 && large_mb >= normal_mb);
        Self {
            normal_mb,
            large_mb,
            large_fraction: large_fraction.clamp(0.0, 1.0),
        }
    }

    /// All nodes are 128 GB: the 100%-memory system.
    pub fn all_large() -> Self {
        Self::new(64 * 1024, Self::FULL_NODE_MB, 1.0)
    }

    /// 64/128 GB mix with half the nodes large (75% total memory).
    pub fn half_large() -> Self {
        Self::new(64 * 1024, Self::FULL_NODE_MB, 0.5)
    }

    /// The eight memory configurations on the x-axis of Figures 5 and 8,
    /// as `(label_percent, mix)`: {37, 43, 50, 57, 62, 75, 87, 100}.
    ///
    /// Points ≥ 50% come from 64/128 GB systems with {0,15,25,50,75,100}%
    /// large nodes; 37% and 43% from 32/64 GB systems with 50% and 75%
    /// large nodes (§3.4: systems have either 128 GB or 64 GB large
    /// nodes).
    pub fn paper_axis() -> Vec<(u32, MemoryMix)> {
        let g = 1024;
        vec![
            (37, MemoryMix::new(32 * g, 64 * g, 0.5)),
            (43, MemoryMix::new(32 * g, 64 * g, 0.75)),
            (50, MemoryMix::new(64 * g, 128 * g, 0.0)),
            (57, MemoryMix::new(64 * g, 128 * g, 0.15)),
            (62, MemoryMix::new(64 * g, 128 * g, 0.25)),
            (75, MemoryMix::new(64 * g, 128 * g, 0.5)),
            (87, MemoryMix::new(64 * g, 128 * g, 0.75)),
            (100, MemoryMix::new(64 * g, 128 * g, 1.0)),
        ]
    }

    /// Whether node `i` of `n` is a large node. Large nodes are spread
    /// evenly across the id space so borrowing distances stay uniform.
    pub fn is_large(&self, i: u32, _n: u32) -> bool {
        let f = self.large_fraction;
        ((i + 1) as f64 * f).floor() > (i as f64 * f).floor()
    }

    /// Capacity of node `i` of `n` in MB.
    pub fn capacity_of(&self, i: u32, n: u32) -> u64 {
        if self.is_large(i, n) {
            self.large_mb
        } else {
            self.normal_mb
        }
    }

    /// Capacities of all `n` nodes.
    pub fn capacities(&self, n: u32) -> Vec<u64> {
        (0..n).map(|i| self.capacity_of(i, n)).collect()
    }

    /// Total memory of an `n`-node system in MB.
    pub fn total_memory_mb(&self, n: u32) -> u64 {
        self.capacities(n).iter().sum()
    }

    /// Number of large nodes in an `n`-node system.
    pub fn large_nodes(&self, n: u32) -> u32 {
        (0..n).filter(|&i| self.is_large(i, n)).count() as u32
    }
}

/// One node's ledger.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// DRAM capacity in MB.
    pub capacity_mb: u64,
    /// Memory allocated to the job running on this node (its local part).
    pub local_alloc_mb: u64,
    /// Memory lent to jobs running elsewhere.
    pub lent_mb: u64,
    /// The job running on this node, if any (exclusive allocation).
    pub running: Option<JobId>,
    /// Aggregate remote-bandwidth demand from borrowers, GB/s.
    pub remote_demand_gbs: f64,
    /// Whether the node has crashed and is awaiting repair. A down node
    /// has zero free memory and is never schedulable.
    pub down: bool,
    /// Capacity currently lost to pool-blade degradation, MB. Degraded
    /// memory is neither free nor allocatable until restored.
    pub degraded_mb: u64,
}

impl Node {
    /// Free memory: capacity minus local allocation, lent memory, and
    /// degraded capacity. Zero while the node is down.
    #[inline]
    pub fn free_mb(&self) -> u64 {
        if self.down {
            return 0;
        }
        self.capacity_mb - self.local_alloc_mb - self.lent_mb - self.degraded_mb
    }
}

/// The memory allocation of one running job: one entry per compute node.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JobAlloc {
    /// Per-compute-node allocation entries.
    pub entries: Vec<AllocEntry>,
}

/// Allocation on a single compute node: a local slice plus zero or more
/// remote slices borrowed from lender nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AllocEntry {
    /// The compute node the job runs on.
    pub node: NodeId,
    /// Local memory allocated on that node, MB.
    pub local_mb: u64,
    /// Borrowed slices as `(lender, mb)`; a lender appears at most once.
    pub remote: Vec<(NodeId, u64)>,
}

impl AllocEntry {
    /// Total memory of this entry (local + remote), MB.
    pub fn total_mb(&self) -> u64 {
        self.local_mb + self.remote_mb()
    }

    /// Remote memory of this entry, MB.
    pub fn remote_mb(&self) -> u64 {
        self.remote.iter().map(|&(_, mb)| mb).sum()
    }
}

impl JobAlloc {
    /// Total allocated memory across all compute nodes, MB.
    pub fn total_mb(&self) -> u64 {
        self.entries.iter().map(AllocEntry::total_mb).sum()
    }

    /// Total remote memory, MB.
    pub fn remote_mb(&self) -> u64 {
        self.entries.iter().map(AllocEntry::remote_mb).sum()
    }

    /// Remote fraction of the whole allocation in `[0,1]` (0 when the
    /// allocation is empty).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_mb();
        if total == 0 {
            0.0
        } else {
            self.remote_mb() as f64 / total as f64
        }
    }

    /// Collect the distinct lender nodes into `out` (cleared first), in
    /// first-appearance order: the allocation-free twin of
    /// [`Self::lenders`] for hot paths with a reusable buffer.
    pub fn lenders_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        for e in &self.entries {
            for &(l, _) in &e.remote {
                if !out.contains(&l) {
                    out.push(l);
                }
            }
        }
    }

    /// Iterate over the distinct lender nodes of this allocation.
    pub fn lenders(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Lender lists are tiny (a few entries); a linear de-dup avoids a
        // HashSet allocation on this hot path.
        let mut seen: Vec<NodeId> = Vec::new();
        self.entries
            .iter()
            .flat_map(|e| e.remote.iter().map(|&(l, _)| l))
            .filter(move |l| {
                if seen.contains(l) {
                    false
                } else {
                    seen.push(*l);
                    true
                }
            })
    }
}

/// Whole-cluster state: node ledgers plus the per-job allocation table
/// and the lender→borrowers index used for contention propagation.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    lend_cap_fraction: f64,
    allocs: HashMap<JobId, JobAlloc>,
    /// Per-job remote bandwidth contributions: `(lender, gbs)` pairs,
    /// mirrored into `Node::remote_demand_gbs`.
    demand_contribs: HashMap<JobId, Vec<(NodeId, f64)>>,
    /// Reverse index: which jobs borrow from each lender.
    borrowers: HashMap<NodeId, Vec<JobId>>,
    idle_nodes: usize,
    total_capacity_mb: u64,
    /// Running total of allocated memory (local + lent), maintained by
    /// every mutation so utilisation accounting is O(1) per event.
    total_alloc_mb: u64,
    /// Capacity currently unavailable to the pool: the full capacity of
    /// down nodes plus the degraded slices of up nodes. Maintained
    /// incrementally so pool-availability accounting is O(1) per event.
    total_offline_mb: u64,
    /// Number of nodes currently down.
    down_count: usize,
    /// Schedulable nodes (idle, within lend cap) keyed by free MB, node
    /// ids ascending per bucket. Serves best-fit placement directly.
    sched_index: BTreeMap<u64, Vec<NodeId>>,
    /// All nodes with free memory — the lender pool — keyed the same way.
    free_index: BTreeMap<u64, Vec<NodeId>>,
    /// Cached `sched_index` population for O(1) feasibility checks.
    schedulable_count: usize,
    /// Reusable buffers for mutation internals (per-lender aggregation,
    /// lender-set snapshots); kept here so the hot path never allocates.
    scratch_per_lender: Vec<(NodeId, u64)>,
    scratch_lenders: Vec<NodeId>,
    scratch_touched: Vec<NodeId>,
}

/// Insert `id` into the `key` bucket, keeping ids sorted ascending.
fn index_insert(index: &mut BTreeMap<u64, Vec<NodeId>>, key: u64, id: NodeId) {
    let ids = index.entry(key).or_default();
    match ids.binary_search(&id) {
        Ok(_) => debug_assert!(false, "{id:?} already indexed at {key}"),
        Err(pos) => ids.insert(pos, id),
    }
}

/// Remove `id` from the `key` bucket, dropping the bucket when empty.
fn index_remove(index: &mut BTreeMap<u64, Vec<NodeId>>, key: u64, id: NodeId) {
    let ids = index.get_mut(&key).expect("index bucket missing");
    let pos = ids
        .binary_search(&id)
        .expect("node missing from index bucket");
    ids.remove(pos);
    if ids.is_empty() {
        index.remove(&key);
    }
}

impl Cluster {
    /// Build a cluster from per-node capacities.
    pub fn new(capacities: Vec<u64>, lend_cap_fraction: f64) -> Self {
        assert!(!capacities.is_empty(), "cluster needs at least one node");
        assert!((0.0..=1.0).contains(&lend_cap_fraction));
        let total_capacity_mb = capacities.iter().sum();
        let idle_nodes = capacities.len();
        let nodes = capacities
            .into_iter()
            .map(|capacity_mb| Node {
                capacity_mb,
                local_alloc_mb: 0,
                lent_mb: 0,
                running: None,
                remote_demand_gbs: 0.0,
                down: false,
                degraded_mb: 0,
            })
            .collect();
        let mut cluster = Self {
            nodes,
            lend_cap_fraction,
            allocs: HashMap::new(),
            demand_contribs: HashMap::new(),
            borrowers: HashMap::new(),
            idle_nodes,
            total_capacity_mb,
            total_alloc_mb: 0,
            total_offline_mb: 0,
            down_count: 0,
            sched_index: BTreeMap::new(),
            free_index: BTreeMap::new(),
            schedulable_count: 0,
            scratch_per_lender: Vec::new(),
            scratch_lenders: Vec::new(),
            scratch_touched: Vec::new(),
        };
        // Every node starts idle with its full capacity free.
        for i in 0..cluster.nodes.len() {
            let id = NodeId(i as u32);
            let free = cluster.nodes[i].free_mb();
            if free > 0 {
                index_insert(&mut cluster.free_index, free, id);
            }
            index_insert(&mut cluster.sched_index, free, id);
        }
        cluster.schedulable_count = cluster.nodes.len();
        cluster
    }

    /// Apply a mutation to one node and resync the indexes from its
    /// before/after `(free, schedulable)` state. Every node mutation
    /// that can move free memory or schedulability goes through here.
    #[inline]
    fn touch<F: FnOnce(&mut Node)>(&mut self, id: NodeId, f: F) {
        let i = id.0 as usize;
        let old_free = self.nodes[i].free_mb();
        let old_sched = self.schedulable(id);
        f(&mut self.nodes[i]);
        let new_free = self.nodes[i].free_mb();
        let new_sched = self.schedulable(id);
        if old_free != new_free {
            if old_free > 0 {
                index_remove(&mut self.free_index, old_free, id);
            }
            if new_free > 0 {
                index_insert(&mut self.free_index, new_free, id);
            }
        }
        if old_sched && (!new_sched || old_free != new_free) {
            index_remove(&mut self.sched_index, old_free, id);
        }
        if new_sched && (!old_sched || old_free != new_free) {
            index_insert(&mut self.sched_index, new_free, id);
        }
        if old_sched != new_sched {
            if new_sched {
                self.schedulable_count += 1;
            } else {
                self.schedulable_count -= 1;
            }
        }
    }

    /// Build the cluster described by a [`crate::config::SystemConfig`].
    pub fn from_config(cfg: &crate::config::SystemConfig) -> Self {
        Self::new(cfg.memory_mix.capacities(cfg.nodes), cfg.lend_cap_fraction)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to one node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Iterate over `(NodeId, &Node)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Number of idle (not running a job) nodes.
    pub fn idle_count(&self) -> usize {
        self.idle_nodes
    }

    /// Total cluster capacity in MB.
    pub fn total_capacity_mb(&self) -> u64 {
        self.total_capacity_mb
    }

    /// Total memory currently allocated (local + lent views coincide:
    /// lent memory is counted once, on the lender). O(1): maintained
    /// incrementally because the simulator reads it on every event for
    /// the utilisation integral.
    pub fn total_allocated_mb(&self) -> u64 {
        self.total_alloc_mb
    }

    /// Whether a node may accept a new job: up, idle, and within its lend
    /// cap (otherwise it is temporarily a memory-only node).
    pub fn schedulable(&self, id: NodeId) -> bool {
        let n = self.node(id);
        !n.down
            && n.running.is_none()
            && (n.lent_mb as f64) <= self.lend_cap_fraction * n.capacity_mb as f64
    }

    /// Number of nodes currently able to accept a job. O(1).
    pub fn schedulable_count(&self) -> usize {
        self.schedulable_count
    }

    /// Total free memory across the cluster in MB, excluding down-node
    /// and degraded capacity. O(1).
    pub fn free_pool_mb(&self) -> u64 {
        self.total_capacity_mb - self.total_alloc_mb - self.total_offline_mb
    }

    /// Capacity currently unavailable to the pool (down nodes plus
    /// degraded slices), MB. O(1).
    pub fn total_offline_mb(&self) -> u64 {
        self.total_offline_mb
    }

    /// Whether the node is down.
    pub fn is_down(&self, id: NodeId) -> bool {
        self.node(id).down
    }

    /// Number of nodes currently down. O(1).
    pub fn down_count(&self) -> usize {
        self.down_count
    }

    /// Schedulable nodes with at least `min_free` MB free, ascending by
    /// `(free, id)` — the phase-1 best-fit order.
    pub fn schedulable_by_free_asc(
        &self,
        min_free: u64,
    ) -> impl Iterator<Item = (u64, NodeId)> + '_ {
        self.sched_index
            .range(min_free..)
            .flat_map(|(&f, ids)| ids.iter().map(move |&id| (f, id)))
    }

    /// All schedulable nodes, descending by free memory with ids
    /// ascending within ties — the phase-2 compute-node order.
    pub fn schedulable_by_free_desc(&self) -> impl Iterator<Item = (u64, NodeId)> + '_ {
        self.sched_index
            .iter()
            .rev()
            .flat_map(|(&f, ids)| ids.iter().map(move |&id| (f, id)))
    }

    /// The lender pool: every node with free memory, descending by free
    /// with ids ascending within ties.
    pub fn free_by_free_desc(&self) -> impl Iterator<Item = (u64, NodeId)> + '_ {
        self.free_index
            .iter()
            .rev()
            .flat_map(|(&f, ids)| ids.iter().map(move |&id| (f, id)))
    }

    /// The allocation of a running job, if any.
    pub fn alloc_of(&self, job: JobId) -> Option<&JobAlloc> {
        self.allocs.get(&job)
    }

    /// Jobs currently borrowing memory from `lender`.
    pub fn borrowers_of(&self, lender: NodeId) -> &[JobId] {
        self.borrowers
            .get(&lender)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Maximum remote-bandwidth demand across the lenders of `job`'s
    /// allocation, GB/s. Zero for fully local jobs.
    pub fn hottest_lender_demand_gbs(&self, job: JobId) -> f64 {
        let Some(alloc) = self.allocs.get(&job) else {
            return 0.0;
        };
        alloc
            .lenders()
            .map(|l| self.node(l).remote_demand_gbs)
            .fold(0.0, f64::max)
    }

    /// Place a job on the cluster with the given allocation, recording
    /// its bandwidth demand `bandwidth_gbs` for contention accounting.
    ///
    /// # Panics
    /// Panics if the allocation violates the ledger (node busy, not
    /// enough free memory on a compute node or lender, job already
    /// placed, self-borrow, duplicate lender within an entry).
    pub fn start_job(&mut self, job: JobId, alloc: JobAlloc, bandwidth_gbs: f64) {
        assert!(!self.allocs.contains_key(&job), "{job} is already placed");
        assert!(!alloc.entries.is_empty(), "empty allocation for {job}");
        // Validate first so a panic cannot leave a half-applied ledger.
        for e in &alloc.entries {
            let n = self.node(e.node);
            assert!(n.running.is_none(), "node {:?} is busy", e.node);
            assert!(
                e.local_mb <= n.free_mb(),
                "node {:?}: local {} > free {}",
                e.node,
                e.local_mb,
                n.free_mb()
            );
            let mut seen = Vec::new();
            for &(lender, mb) in &e.remote {
                assert!(lender != e.node, "{job} borrows from its own node");
                assert!(!seen.contains(&lender), "duplicate lender {lender:?}");
                seen.push(lender);
                assert!(mb > 0, "zero-size borrow from {lender:?}");
            }
        }
        // Aggregate borrows per lender across entries for the free check.
        // A sorted scratch Vec instead of a HashMap: no allocation after
        // warm-up, and a deterministic lender apply order.
        let mut per_lender = std::mem::take(&mut self.scratch_per_lender);
        per_lender.clear();
        for e in &alloc.entries {
            for &(lender, mb) in &e.remote {
                match per_lender.binary_search_by_key(&lender, |&(l, _)| l) {
                    Ok(pos) => per_lender[pos].1 += mb,
                    Err(pos) => per_lender.insert(pos, (lender, mb)),
                }
            }
        }
        for &(lender, mb) in &per_lender {
            // If the lender is also one of the job's compute nodes, its
            // free memory shrinks by the local slice being placed there.
            let local_here: u64 = alloc
                .entries
                .iter()
                .filter(|e| e.node == lender)
                .map(|e| e.local_mb)
                .sum();
            let free = self.node(lender).free_mb().saturating_sub(local_here);
            assert!(mb <= free, "lender {lender:?}: borrow {mb} > free {free}");
        }
        // Apply.
        for e in &alloc.entries {
            self.touch(e.node, |n| {
                n.running = Some(job);
                n.local_alloc_mb = mb_add(n.local_alloc_mb, e.local_mb);
            });
            self.total_alloc_mb = mb_add(self.total_alloc_mb, e.local_mb);
            self.idle_nodes -= 1;
        }
        for &(lender, mb) in &per_lender {
            self.touch(lender, |n| n.lent_mb = mb_add(n.lent_mb, mb));
            self.total_alloc_mb = mb_add(self.total_alloc_mb, mb);
            self.borrowers.entry(lender).or_default().push(job);
        }
        self.scratch_per_lender = per_lender;
        self.allocs.insert(job, alloc);
        self.refresh_demand(job, bandwidth_gbs);
        self.debug_check();
    }

    /// Remove a finished (or killed) job, releasing all its memory.
    /// Returns the final allocation.
    ///
    /// # Panics
    /// Panics if the job is not placed.
    pub fn finish_job(&mut self, job: JobId) -> JobAlloc {
        let alloc = self.allocs.remove(&job).expect("finish of unplaced job");
        for e in &alloc.entries {
            debug_assert_eq!(self.nodes[e.node.0 as usize].running, Some(job));
            self.touch(e.node, |n| {
                n.running = None;
                n.local_alloc_mb = mb_sub(n.local_alloc_mb, e.local_mb);
            });
            self.total_alloc_mb = mb_sub(self.total_alloc_mb, e.local_mb);
            self.idle_nodes += 1;
            for &(lender, mb) in &e.remote {
                self.touch(lender, |n| n.lent_mb = mb_sub(n.lent_mb, mb));
                self.total_alloc_mb = mb_sub(self.total_alloc_mb, mb);
            }
        }
        // Clear contention contributions and the reverse index.
        if let Some(contribs) = self.demand_contribs.remove(&job) {
            for (lender, gbs) in contribs {
                let n = &mut self.nodes[lender.0 as usize];
                n.remote_demand_gbs = (n.remote_demand_gbs - gbs).max(0.0);
            }
        }
        let mut lenders = std::mem::take(&mut self.scratch_lenders);
        alloc.lenders_into(&mut lenders);
        for &lender in &lenders {
            if let Some(bs) = self.borrowers.get_mut(&lender) {
                bs.retain(|&j| j != job);
                if bs.is_empty() {
                    self.borrowers.remove(&lender);
                }
            }
        }
        self.scratch_lenders = lenders;
        self.debug_check();
        alloc
    }

    /// Shrink a job's allocation towards `target_mb` per compute node,
    /// releasing remote memory first, then local (paper §2.2: "It will
    /// deallocate remote memory before deallocating local memory").
    /// Entries already at or below target are untouched. Returns the MB
    /// released.
    ///
    /// # Panics
    /// Panics if the job is not placed.
    pub fn shrink_job(&mut self, job: JobId, target_mb: u64, bandwidth_gbs: f64) -> u64 {
        let mut alloc = self.allocs.remove(&job).expect("shrink of unplaced job");
        let mut released = 0u64;
        let mut touched_lenders = std::mem::take(&mut self.scratch_touched);
        touched_lenders.clear();
        for e in &mut alloc.entries {
            let mut excess = e.total_mb().saturating_sub(target_mb);
            if excess == 0 {
                continue;
            }
            released += excess;
            // Remote first: peel borrows from the back (most recently
            // added lender first — the coldest slice in the local-first
            // allocation order).
            while excess > 0 {
                let Some(&mut (lender, ref mut mb)) = e.remote.last_mut() else {
                    break;
                };
                let take = (*mb).min(excess);
                *mb -= take;
                excess -= take;
                self.touch(lender, |n| n.lent_mb = mb_sub(n.lent_mb, take));
                if !touched_lenders.contains(&lender) {
                    touched_lenders.push(lender);
                }
                if *mb == 0 {
                    e.remote.pop();
                }
            }
            // Then local.
            if excess > 0 {
                e.local_mb = mb_sub(e.local_mb, excess);
                self.touch(e.node, |n| {
                    n.local_alloc_mb = mb_sub(n.local_alloc_mb, excess)
                });
            }
        }
        // Drop reverse-index entries for lenders no longer used.
        let mut still = std::mem::take(&mut self.scratch_lenders);
        alloc.lenders_into(&mut still);
        for &lender in &touched_lenders {
            if !still.contains(&lender) {
                if let Some(bs) = self.borrowers.get_mut(&lender) {
                    bs.retain(|&j| j != job);
                    if bs.is_empty() {
                        self.borrowers.remove(&lender);
                    }
                }
            }
        }
        self.scratch_lenders = still;
        self.scratch_touched = touched_lenders;
        self.total_alloc_mb = mb_sub(self.total_alloc_mb, released);
        self.allocs.insert(job, alloc);
        self.refresh_demand(job, bandwidth_gbs);
        self.debug_check();
        released
    }

    /// Grow one compute-node entry of a job: `add_local` MB locally plus
    /// the given borrowed slices. The caller (the policy) has already
    /// chosen the lenders; this method validates and applies.
    ///
    /// # Panics
    /// Panics on ledger violations (not enough free local memory, lender
    /// without free memory, self-borrow) or if the job/entry is unknown.
    pub fn grow_entry(
        &mut self,
        job: JobId,
        node: NodeId,
        add_local: u64,
        add_remote: &[(NodeId, u64)],
        bandwidth_gbs: f64,
    ) {
        {
            let n = self.node(node);
            assert_eq!(n.running, Some(job), "grow on a node not running {job}");
            assert!(
                add_local <= n.free_mb(),
                "grow local {} > free {}",
                add_local,
                n.free_mb()
            );
        }
        for &(lender, mb) in add_remote {
            assert!(lender != node, "{job} borrowing from its own node");
            assert!(mb > 0, "zero-size borrow");
            assert!(
                mb <= self.node(lender).free_mb(),
                "lender {lender:?} lacks {mb} MB"
            );
        }
        {
            let alloc = self.allocs.get(&job).expect("grow of unplaced job");
            assert!(
                alloc.entries.iter().any(|e| e.node == node),
                "grow on a node outside the job's allocation"
            );
        }
        // Apply to the node ledgers (through the index-tracking `touch`),
        // then mirror into the job's allocation entry.
        self.touch(node, |n| {
            n.local_alloc_mb = mb_add(n.local_alloc_mb, add_local)
        });
        self.total_alloc_mb = mb_add(self.total_alloc_mb, add_local);
        for &(lender, mb) in add_remote {
            self.touch(lender, |n| n.lent_mb = mb_add(n.lent_mb, mb));
            self.total_alloc_mb = mb_add(self.total_alloc_mb, mb);
            let bs = self.borrowers.entry(lender).or_default();
            if !bs.contains(&job) {
                bs.push(job);
            }
        }
        let alloc = self.allocs.get_mut(&job).expect("grow of unplaced job");
        let entry = alloc
            .entries
            .iter_mut()
            .find(|e| e.node == node)
            .expect("grow on a node outside the job's allocation");
        entry.local_mb = mb_add(entry.local_mb, add_local);
        for &(lender, mb) in add_remote {
            if let Some(slot) = entry.remote.iter_mut().find(|(l, _)| *l == lender) {
                slot.1 = mb_add(slot.1, mb);
            } else {
                entry.remote.push((lender, mb));
            }
        }
        self.refresh_demand(job, bandwidth_gbs);
        self.debug_check();
    }

    /// Mark a node as crashed. The caller (the simulation's fault
    /// handler) is responsible for evacuating the resident job and
    /// revoking borrows — this only flips the node out of the free and
    /// schedulable indexes and into the offline accounting.
    ///
    /// # Panics
    /// Panics if the node is already down.
    pub fn set_node_down(&mut self, id: NodeId) {
        let (down, cap, degraded) = {
            let n = self.node(id);
            (n.down, n.capacity_mb, n.degraded_mb)
        };
        assert!(!down, "{id:?} is already down");
        self.total_offline_mb = mb_add(self.total_offline_mb, cap - degraded);
        self.down_count += 1;
        self.touch(id, |n| n.down = true);
        self.debug_check();
    }

    /// Complete a node's repair: it rejoins the pool with whatever
    /// capacity is not still degraded.
    ///
    /// # Panics
    /// Panics if the node is not down.
    pub fn repair_node(&mut self, id: NodeId) {
        let (down, cap, degraded) = {
            let n = self.node(id);
            (n.down, n.capacity_mb, n.degraded_mb)
        };
        assert!(down, "{id:?} is not down");
        self.total_offline_mb = mb_sub(self.total_offline_mb, cap - degraded);
        self.down_count -= 1;
        self.touch(id, |n| n.down = false);
        self.debug_check();
    }

    /// Take `mb` of a node's capacity out of the pool (blade
    /// degradation). The caller must have reclaimed enough memory first:
    /// the node's allocation must fit in the remaining capacity.
    ///
    /// # Panics
    /// Panics if the degraded slice would not fit the capacity or would
    /// overlap allocated memory.
    pub fn apply_degrade(&mut self, id: NodeId, mb: u64) {
        assert!(mb > 0, "zero-size degrade");
        let (down, degraded) = {
            let n = self.node(id);
            let degraded = mb_add(n.degraded_mb, mb);
            assert!(
                degraded <= n.capacity_mb,
                "{id:?}: degrade {degraded} exceeds capacity {}",
                n.capacity_mb
            );
            assert!(
                n.local_alloc_mb + n.lent_mb <= n.capacity_mb - degraded,
                "{id:?}: degrade overlaps allocated memory"
            );
            (n.down, degraded)
        };
        if !down {
            self.total_offline_mb = mb_add(self.total_offline_mb, mb);
        }
        self.touch(id, |n| n.degraded_mb = degraded);
        self.debug_check();
    }

    /// Return a previously degraded slice to the pool.
    ///
    /// # Panics
    /// Panics if `mb` exceeds the node's outstanding degradation.
    pub fn restore_degrade(&mut self, id: NodeId, mb: u64) {
        let (down, degraded) = {
            let n = self.node(id);
            (n.down, mb_sub(n.degraded_mb, mb))
        };
        if !down {
            self.total_offline_mb = mb_sub(self.total_offline_mb, mb);
        }
        self.touch(id, |n| n.degraded_mb = degraded);
        self.debug_check();
    }

    /// Revoke every slice `job` borrows from `lender`, returning the
    /// lost MB per compute node so the fault handler can try to re-grow
    /// the allocation elsewhere. Used when a lender crashes or loses
    /// blade capacity.
    ///
    /// # Panics
    /// Panics if the job is not placed.
    pub fn revoke_lender(
        &mut self,
        job: JobId,
        lender: NodeId,
        bandwidth_gbs: f64,
    ) -> Vec<(NodeId, u64)> {
        let mut alloc = self.allocs.remove(&job).expect("revoke of unplaced job");
        let mut lost: Vec<(NodeId, u64)> = Vec::new();
        let mut total = 0u64;
        for e in &mut alloc.entries {
            let mut here = 0u64;
            e.remote.retain(|&(l, mb)| {
                if l == lender {
                    here = mb_add(here, mb);
                    false
                } else {
                    true
                }
            });
            if here > 0 {
                lost.push((e.node, here));
                total = mb_add(total, here);
            }
        }
        if total > 0 {
            self.touch(lender, |n| n.lent_mb = mb_sub(n.lent_mb, total));
            self.total_alloc_mb = mb_sub(self.total_alloc_mb, total);
            if let Some(bs) = self.borrowers.get_mut(&lender) {
                bs.retain(|&j| j != job);
                if bs.is_empty() {
                    self.borrowers.remove(&lender);
                }
            }
        }
        self.allocs.insert(job, alloc);
        self.refresh_demand(job, bandwidth_gbs);
        self.debug_check();
        lost
    }

    /// Recompute the job's bandwidth contributions to its lenders from its
    /// current allocation. Contribution to lender `L` is
    /// `bandwidth × (mb on L) / (total mb)` summed over compute nodes —
    /// the slice-weighted share of the job's traffic that crosses `L`'s
    /// link.
    fn refresh_demand(&mut self, job: JobId, bandwidth_gbs: f64) {
        if let Some(old) = self.demand_contribs.remove(&job) {
            for (lender, gbs) in old {
                let n = &mut self.nodes[lender.0 as usize];
                n.remote_demand_gbs = (n.remote_demand_gbs - gbs).max(0.0);
            }
        }
        let alloc = &self.allocs[&job];
        let total = alloc.total_mb();
        if total == 0 {
            return;
        }
        let mut contribs: Vec<(NodeId, f64)> = Vec::new();
        for e in &alloc.entries {
            for &(lender, mb) in &e.remote {
                let gbs = bandwidth_gbs * mb as f64 / total as f64;
                if let Some(slot) = contribs.iter_mut().find(|(l, _)| *l == lender) {
                    slot.1 += gbs;
                } else {
                    contribs.push((lender, gbs));
                }
            }
        }
        for &(lender, gbs) in &contribs {
            self.nodes[lender.0 as usize].remote_demand_gbs += gbs;
        }
        if !contribs.is_empty() {
            self.demand_contribs.insert(job, contribs);
        }
    }

    /// Full invariant check; `debug_assert!`ed after every mutation and
    /// callable from tests.
    pub fn check_invariants(&self) -> Result<(), CoreError> {
        let err = |msg: String| Err(CoreError::Ledger(msg));
        let mut lent_expected: HashMap<NodeId, u64> = HashMap::new();
        let mut local_expected: HashMap<NodeId, u64> = HashMap::new();
        for (job, alloc) in &self.allocs {
            for e in &alloc.entries {
                let n = self.node(e.node);
                if n.running != Some(*job) {
                    return err(format!("{job} allocated on {:?} but not running", e.node));
                }
                *local_expected.entry(e.node).or_insert(0) += e.local_mb;
                for &(lender, mb) in &e.remote {
                    *lent_expected.entry(lender).or_insert(0) += mb;
                }
            }
        }
        for (id, n) in self.iter() {
            if n.local_alloc_mb + n.lent_mb + n.degraded_mb > n.capacity_mb {
                return err(format!("{id:?} over capacity"));
            }
            if n.local_alloc_mb != local_expected.get(&id).copied().unwrap_or(0) {
                return err(format!("{id:?} local ledger mismatch"));
            }
            if n.lent_mb != lent_expected.get(&id).copied().unwrap_or(0) {
                return err(format!("{id:?} lent ledger mismatch"));
            }
            if n.running.is_none() && n.local_alloc_mb != 0 {
                return err(format!("{id:?} idle but has local allocation"));
            }
            if n.remote_demand_gbs < -1e-9 {
                return err(format!("{id:?} negative demand"));
            }
        }
        let idle = self.nodes.iter().filter(|n| n.running.is_none()).count();
        if idle != self.idle_nodes {
            return err("idle counter mismatch".to_string());
        }
        let down = self.nodes.iter().filter(|n| n.down).count();
        if down != self.down_count {
            return err(format!(
                "down counter mismatch: rebuild {down} vs counter {}",
                self.down_count
            ));
        }
        let offline_sum: u64 = self
            .nodes
            .iter()
            .map(|n| if n.down { n.capacity_mb } else { n.degraded_mb })
            .sum();
        if offline_sum != self.total_offline_mb {
            return err(format!(
                "offline counter mismatch: rebuild {offline_sum} vs counter {}",
                self.total_offline_mb
            ));
        }
        let alloc_sum: u64 = self
            .nodes
            .iter()
            .map(|n| n.local_alloc_mb + n.lent_mb)
            .sum();
        if alloc_sum != self.total_alloc_mb {
            return err(format!(
                "allocated counter mismatch: ledger {alloc_sum} vs counter {}",
                self.total_alloc_mb
            ));
        }
        // The incremental indexes must match a from-scratch rebuild.
        let mut sched_expected: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        let mut free_expected: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        let mut sched_count = 0usize;
        for (id, n) in self.iter() {
            if n.free_mb() > 0 {
                free_expected.entry(n.free_mb()).or_default().push(id);
            }
            if self.schedulable(id) {
                sched_expected.entry(n.free_mb()).or_default().push(id);
                sched_count += 1;
            }
        }
        if free_expected != self.free_index {
            return err("free index out of sync with node ledgers".to_string());
        }
        if sched_expected != self.sched_index {
            return err("schedulable index out of sync with node ledgers".to_string());
        }
        if sched_count != self.schedulable_count {
            return err(format!(
                "schedulable counter mismatch: rebuild {sched_count} vs counter {}",
                self.schedulable_count
            ));
        }
        Ok(())
    }

    #[inline]
    fn debug_check(&self) {
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster4() -> Cluster {
        // 4 nodes of 1000 MB, lend cap 50%.
        Cluster::new(vec![1000; 4], 0.5)
    }

    fn local_alloc(nodes: &[u32], mb: u64) -> JobAlloc {
        JobAlloc {
            entries: nodes
                .iter()
                .map(|&n| AllocEntry {
                    node: NodeId(n),
                    local_mb: mb,
                    remote: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn memory_mix_axis_fractions() {
        for (pct, mix) in MemoryMix::paper_axis() {
            let total = mix.total_memory_mb(1024) as f64;
            let frac = total / (1024 * MemoryMix::FULL_NODE_MB) as f64 * 100.0;
            // Label is the floor-ish value used in the paper.
            assert!(
                (frac - pct as f64).abs() < 1.0,
                "axis point {pct}: got {frac:.2}"
            );
        }
    }

    #[test]
    fn memory_mix_large_nodes_spread() {
        let mix = MemoryMix::new(64, 128, 0.25);
        let caps = mix.capacities(8);
        assert_eq!(caps.iter().filter(|&&c| c == 128).count(), 2);
        // Evenly spread: one large in each half.
        assert!(caps[..4].contains(&128) && caps[4..].contains(&128));
    }

    #[test]
    fn memory_mix_extremes() {
        let all = MemoryMix::all_large();
        assert_eq!(all.large_nodes(10), 10);
        let none = MemoryMix::new(64, 128, 0.0);
        assert_eq!(none.large_nodes(10), 0);
    }

    #[test]
    fn start_and_finish_job_roundtrip() {
        let mut c = cluster4();
        c.start_job(JobId(1), local_alloc(&[0, 1], 600), 5.0);
        assert_eq!(c.idle_count(), 2);
        assert_eq!(c.node(NodeId(0)).local_alloc_mb, 600);
        assert_eq!(c.total_allocated_mb(), 1200);
        let alloc = c.finish_job(JobId(1));
        assert_eq!(alloc.total_mb(), 1200);
        assert_eq!(c.idle_count(), 4);
        assert_eq!(c.total_allocated_mb(), 0);
        assert_eq!(c.check_invariants(), Ok(()));
    }

    #[test]
    fn borrow_accounting() {
        let mut c = cluster4();
        let alloc = JobAlloc {
            entries: vec![AllocEntry {
                node: NodeId(0),
                local_mb: 1000,
                remote: vec![(NodeId(1), 400), (NodeId(2), 100)],
            }],
        };
        c.start_job(JobId(7), alloc, 8.0);
        assert_eq!(c.node(NodeId(1)).lent_mb, 400);
        assert_eq!(c.node(NodeId(2)).lent_mb, 100);
        assert_eq!(c.node(NodeId(1)).free_mb(), 600);
        assert_eq!(c.borrowers_of(NodeId(1)), &[JobId(7)]);
        // Demand split by slice share: total 1500, node1 carries 400.
        let d1 = c.node(NodeId(1)).remote_demand_gbs;
        assert!((d1 - 8.0 * 400.0 / 1500.0).abs() < 1e-9);
        assert!(c.hottest_lender_demand_gbs(JobId(7)) >= d1);
        c.finish_job(JobId(7));
        assert_eq!(c.node(NodeId(1)).lent_mb, 0);
        assert!(c.node(NodeId(1)).remote_demand_gbs.abs() < 1e-9);
        assert!(c.borrowers_of(NodeId(1)).is_empty());
    }

    #[test]
    fn schedulable_respects_lend_cap() {
        let mut c = cluster4();
        // Job on node 0 borrowing 600 from node 1 (> 50% of 1000).
        let alloc = JobAlloc {
            entries: vec![AllocEntry {
                node: NodeId(0),
                local_mb: 1000,
                remote: vec![(NodeId(1), 600)],
            }],
        };
        c.start_job(JobId(1), alloc, 1.0);
        assert!(!c.schedulable(NodeId(1)), "memory node must not schedule");
        assert!(c.schedulable(NodeId(2)));
        assert!(!c.schedulable(NodeId(0)), "busy node must not schedule");
    }

    #[test]
    fn shrink_releases_remote_first() {
        let mut c = cluster4();
        let alloc = JobAlloc {
            entries: vec![AllocEntry {
                node: NodeId(0),
                local_mb: 500,
                remote: vec![(NodeId(1), 300)],
            }],
        };
        c.start_job(JobId(1), alloc, 4.0);
        // Shrink 800 -> 600: only remote shrinks (300 -> 100).
        let released = c.shrink_job(JobId(1), 600, 4.0);
        assert_eq!(released, 200);
        let a = c.alloc_of(JobId(1)).unwrap();
        assert_eq!(a.entries[0].local_mb, 500);
        assert_eq!(a.entries[0].remote, vec![(NodeId(1), 100)]);
        assert_eq!(c.node(NodeId(1)).lent_mb, 100);
        // Shrink to 200: remote gone, local 500 -> 200.
        let released = c.shrink_job(JobId(1), 200, 4.0);
        assert_eq!(released, 400);
        let a = c.alloc_of(JobId(1)).unwrap();
        assert_eq!(a.entries[0].local_mb, 200);
        assert!(a.entries[0].remote.is_empty());
        assert!(c.borrowers_of(NodeId(1)).is_empty());
        assert_eq!(c.check_invariants(), Ok(()));
    }

    #[test]
    fn shrink_below_target_is_noop() {
        let mut c = cluster4();
        c.start_job(JobId(1), local_alloc(&[0], 300), 1.0);
        assert_eq!(c.shrink_job(JobId(1), 500, 1.0), 0);
        assert_eq!(c.alloc_of(JobId(1)).unwrap().total_mb(), 300);
    }

    #[test]
    fn grow_local_and_remote() {
        let mut c = cluster4();
        c.start_job(JobId(1), local_alloc(&[0], 300), 6.0);
        c.grow_entry(JobId(1), NodeId(0), 700, &[(NodeId(3), 250)], 6.0);
        let a = c.alloc_of(JobId(1)).unwrap();
        assert_eq!(a.entries[0].local_mb, 1000);
        assert_eq!(a.entries[0].remote, vec![(NodeId(3), 250)]);
        assert_eq!(c.node(NodeId(0)).free_mb(), 0);
        assert_eq!(c.node(NodeId(3)).lent_mb, 250);
        assert_eq!(c.borrowers_of(NodeId(3)), &[JobId(1)]);
        // Growing again merges into the same lender slot.
        c.grow_entry(JobId(1), NodeId(0), 0, &[(NodeId(3), 50)], 6.0);
        let a = c.alloc_of(JobId(1)).unwrap();
        assert_eq!(a.entries[0].remote, vec![(NodeId(3), 300)]);
        assert_eq!(c.borrowers_of(NodeId(3)), &[JobId(1)]);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn start_on_busy_node_panics() {
        let mut c = cluster4();
        c.start_job(JobId(1), local_alloc(&[0], 100), 1.0);
        c.start_job(JobId(2), local_alloc(&[0], 100), 1.0);
    }

    #[test]
    #[should_panic(expected = "free")]
    fn over_allocation_panics() {
        let mut c = cluster4();
        c.start_job(JobId(1), local_alloc(&[0], 1500), 1.0);
    }

    #[test]
    #[should_panic(expected = "own node")]
    fn self_borrow_panics() {
        let mut c = cluster4();
        let alloc = JobAlloc {
            entries: vec![AllocEntry {
                node: NodeId(0),
                local_mb: 100,
                remote: vec![(NodeId(0), 50)],
            }],
        };
        c.start_job(JobId(1), alloc, 1.0);
    }

    #[test]
    #[should_panic(expected = "lender")]
    fn overdrawn_lender_panics() {
        let mut c = cluster4();
        // Lender 1 has 1000 free; two entries borrowing 600 each overdraw.
        let alloc = JobAlloc {
            entries: vec![
                AllocEntry {
                    node: NodeId(0),
                    local_mb: 0,
                    remote: vec![(NodeId(1), 600)],
                },
                AllocEntry {
                    node: NodeId(2),
                    local_mb: 0,
                    remote: vec![(NodeId(1), 600)],
                },
            ],
        };
        c.start_job(JobId(1), alloc, 1.0);
    }

    #[test]
    fn hottest_lender_is_the_max_across_lenders() {
        let mut c = Cluster::new(vec![1000; 4], 0.5);
        // Job 1 borrows lightly from node 2.
        c.start_job(
            JobId(1),
            JobAlloc {
                entries: vec![AllocEntry {
                    node: NodeId(0),
                    local_mb: 900,
                    remote: vec![(NodeId(2), 100)],
                }],
            },
            2.0,
        );
        // Job 2 borrows heavily from node 3 AND lightly from node 2.
        c.start_job(
            JobId(2),
            JobAlloc {
                entries: vec![AllocEntry {
                    node: NodeId(1),
                    local_mb: 200,
                    remote: vec![(NodeId(3), 700), (NodeId(2), 100)],
                }],
            },
            10.0,
        );
        // Node 3 carries 10 × 700/1000 = 7 GB/s; node 2 carries
        // 2×0.1 + 10×0.1 = 1.2 GB/s.
        let hot1 = c.hottest_lender_demand_gbs(JobId(1));
        let hot2 = c.hottest_lender_demand_gbs(JobId(2));
        assert!((hot1 - 1.2).abs() < 1e-9, "job1 sees node2: {hot1}");
        assert!((hot2 - 7.0).abs() < 1e-9, "job2 sees node3: {hot2}");
        // Both jobs appear in node 2's borrower list.
        assert_eq!(c.borrowers_of(NodeId(2)).len(), 2);
    }

    #[test]
    fn fully_local_job_has_zero_hot_demand() {
        let mut c = cluster4();
        c.start_job(JobId(1), local_alloc(&[0], 500), 9.0);
        assert_eq!(c.hottest_lender_demand_gbs(JobId(1)), 0.0);
        assert_eq!(c.hottest_lender_demand_gbs(JobId(99)), 0.0);
    }

    #[test]
    fn down_node_leaves_pool_and_indexes() {
        let mut c = cluster4();
        assert_eq!(c.free_pool_mb(), 4000);
        c.set_node_down(NodeId(1));
        assert!(c.is_down(NodeId(1)));
        assert_eq!(c.down_count(), 1);
        assert_eq!(c.total_offline_mb(), 1000);
        assert_eq!(c.free_pool_mb(), 3000);
        assert_eq!(c.node(NodeId(1)).free_mb(), 0);
        assert!(!c.schedulable(NodeId(1)));
        assert_eq!(c.schedulable_count(), 3);
        // The free/sched indexes must not offer the down node.
        assert!(c.free_by_free_desc().all(|(_, id)| id != NodeId(1)));
        assert!(c.schedulable_by_free_asc(0).all(|(_, id)| id != NodeId(1)));
        c.repair_node(NodeId(1));
        assert_eq!(c.total_offline_mb(), 0);
        assert_eq!(c.schedulable_count(), 4);
        assert_eq!(c.node(NodeId(1)).free_mb(), 1000);
        assert_eq!(c.check_invariants(), Ok(()));
    }

    #[test]
    fn degrade_and_restore_roundtrip() {
        let mut c = cluster4();
        c.apply_degrade(NodeId(2), 400);
        assert_eq!(c.node(NodeId(2)).free_mb(), 600);
        assert_eq!(c.total_offline_mb(), 400);
        assert_eq!(c.free_pool_mb(), 3600);
        // Degraded slices accumulate.
        c.apply_degrade(NodeId(2), 100);
        assert_eq!(c.node(NodeId(2)).degraded_mb, 500);
        c.restore_degrade(NodeId(2), 500);
        assert_eq!(c.node(NodeId(2)).free_mb(), 1000);
        assert_eq!(c.total_offline_mb(), 0);
        assert_eq!(c.check_invariants(), Ok(()));
    }

    #[test]
    fn degrade_on_down_node_does_not_double_count() {
        let mut c = cluster4();
        c.set_node_down(NodeId(0));
        c.apply_degrade(NodeId(0), 300);
        // The whole node is already offline; degradation adds nothing.
        assert_eq!(c.total_offline_mb(), 1000);
        c.repair_node(NodeId(0));
        // Back up, but still missing the degraded slice.
        assert_eq!(c.total_offline_mb(), 300);
        assert_eq!(c.node(NodeId(0)).free_mb(), 700);
        c.restore_degrade(NodeId(0), 300);
        assert_eq!(c.total_offline_mb(), 0);
        assert_eq!(c.check_invariants(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "overlaps allocated")]
    fn degrade_cannot_overlap_allocation() {
        let mut c = cluster4();
        c.start_job(JobId(1), local_alloc(&[0], 800), 1.0);
        c.apply_degrade(NodeId(0), 300);
    }

    #[test]
    fn revoke_lender_strips_borrows_and_reports_loss() {
        let mut c = cluster4();
        let alloc = JobAlloc {
            entries: vec![
                AllocEntry {
                    node: NodeId(0),
                    local_mb: 1000,
                    remote: vec![(NodeId(2), 300)],
                },
                AllocEntry {
                    node: NodeId(1),
                    local_mb: 1000,
                    remote: vec![(NodeId(2), 200), (NodeId(3), 100)],
                },
            ],
        };
        c.start_job(JobId(5), alloc, 6.0);
        let lost = c.revoke_lender(JobId(5), NodeId(2), 6.0);
        assert_eq!(lost, vec![(NodeId(0), 300), (NodeId(1), 200)]);
        assert_eq!(c.node(NodeId(2)).lent_mb, 0);
        assert!(c.borrowers_of(NodeId(2)).is_empty());
        assert_eq!(c.borrowers_of(NodeId(3)), &[JobId(5)]);
        let a = c.alloc_of(JobId(5)).unwrap();
        assert_eq!(a.remote_mb(), 100);
        assert_eq!(c.check_invariants(), Ok(()));
        // Revoking a lender the job does not use is a no-op.
        assert!(c.revoke_lender(JobId(5), NodeId(2), 6.0).is_empty());
    }

    #[test]
    fn two_borrowers_share_lender_demand() {
        let mut c = cluster4();
        let mk = |node: u32, lender: u32| JobAlloc {
            entries: vec![AllocEntry {
                node: NodeId(node),
                local_mb: 500,
                remote: vec![(NodeId(lender), 500)],
            }],
        };
        c.start_job(JobId(1), mk(0, 2), 10.0);
        c.start_job(JobId(2), mk(1, 3), 4.0);
        // Each job is half remote: contributes bandwidth × 0.5.
        assert!((c.node(NodeId(2)).remote_demand_gbs - 5.0).abs() < 1e-9);
        assert!((c.node(NodeId(3)).remote_demand_gbs - 2.0).abs() < 1e-9);
        c.finish_job(JobId(1));
        assert!(c.node(NodeId(2)).remote_demand_gbs.abs() < 1e-9);
        assert!((c.node(NodeId(3)).remote_demand_gbs - 2.0).abs() < 1e-9);
    }
}
