//! The [`RunMetrics`] fold behind [`CountingSink`].

use std::sync::{Arc, Mutex};

use super::kinds::{Subsystem, TraceEvent, TraceKind};
use super::sinks::TraceSink;

/// Run-level summary built from the event stream by [`CountingSink`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Total events recorded.
    pub total_events: u64,
    /// Job submissions (first submits plus resubmissions).
    pub job_submits: u64,
    /// Job starts.
    pub job_starts: u64,
    /// Successful completions.
    pub job_finishes: u64,
    /// Kill events (OOM, fault, exceeded-request).
    pub job_kills: u64,
    /// Resubmissions after a kill.
    pub job_requeues: u64,
    /// Decider invocations.
    pub mem_decides: u64,
    /// Decider invocations that held the allocation steady.
    pub mem_holds: u64,
    /// Executed entry grows.
    pub mem_grows: u64,
    /// Executed shrinks.
    pub mem_shrinks: u64,
    /// Injected Monitor sample losses.
    pub monitor_losses: u64,
    /// Actuator escalations (retry budget exhausted).
    pub actuator_escalations: u64,
    /// Retries by consecutive-attempt number: `histogram[i]` counts
    /// retries that were attempt `i + 1` (attempts beyond 16 saturate
    /// into the last bucket).
    pub actuator_retry_histogram: Vec<u64>,
    /// Scheduling passes that examined a non-empty window.
    pub sched_passes: u64,
    /// Queue-window jobs examined, summed over passes.
    pub jobs_considered: u64,
    /// Jobs placed by scheduling passes.
    pub jobs_placed: u64,
    /// Deepest backfill scan behind a blocked head.
    pub max_backfill_depth: u32,
    /// Injected node crashes that took effect.
    pub node_crashes: u64,
    /// Node repairs.
    pub node_repairs: u64,
    /// Pool degradations that took effect.
    pub pool_degrades: u64,
    /// Pool restores.
    pub pool_restores: u64,
    /// `(sim-time s, pending-queue depth)` samples at the sampling
    /// interval, taken at scheduling-pass starts.
    pub queue_depth_series: Vec<(f64, u32)>,
    /// `(sim-time s, allocated/capacity)` samples at the sampling
    /// interval, taken at scheduling-pass starts.
    pub pool_util_series: Vec<(f64, f64)>,
    /// Sampling interval for the time series, seconds.
    pub sample_interval_s: f64,
    next_sample_s: f64,
}

/// Retry-histogram saturation bucket (attempt numbers ≥ 16 share it).
const RETRY_HIST_BUCKETS: usize = 16;

impl RunMetrics {
    fn new(sample_interval_s: f64) -> Self {
        Self {
            sample_interval_s: sample_interval_s.max(1.0),
            ..Self::default()
        }
    }

    /// Events recorded for one subsystem, as `(subsystem, count)` rows.
    pub fn by_subsystem(&self) -> [(Subsystem, u64); 4] {
        let retries: u64 = self.actuator_retry_histogram.iter().sum();
        [
            (
                Subsystem::Job,
                self.job_submits
                    + self.job_starts
                    + self.job_finishes
                    + self.job_kills
                    + self.job_requeues,
            ),
            (
                Subsystem::Mem,
                self.mem_decides
                    + self.mem_grows
                    + self.mem_shrinks
                    + self.monitor_losses
                    + retries
                    + self.actuator_escalations,
            ),
            (Subsystem::Sched, self.sched_passes * 2),
            (
                Subsystem::Fault,
                self.node_crashes + self.node_repairs + self.pool_degrades + self.pool_restores,
            ),
        ]
    }

    fn fold(&mut self, ev: &TraceEvent) {
        self.total_events += 1;
        match ev.kind {
            TraceKind::JobSubmit { .. } => self.job_submits += 1,
            TraceKind::JobStart { .. } => self.job_starts += 1,
            TraceKind::JobFinish { .. } => self.job_finishes += 1,
            TraceKind::JobKill { .. } => self.job_kills += 1,
            TraceKind::JobRequeue { .. } => self.job_requeues += 1,
            TraceKind::MemDecide {
                grow_mb,
                shrink_to_mb,
                ..
            } => {
                self.mem_decides += 1;
                if grow_mb == 0 && shrink_to_mb == 0 {
                    self.mem_holds += 1;
                }
            }
            TraceKind::MemGrow { .. } => self.mem_grows += 1,
            TraceKind::MemShrink { .. } => self.mem_shrinks += 1,
            TraceKind::MonitorLoss { .. } => self.monitor_losses += 1,
            TraceKind::ActuatorRetry { attempt, .. } => {
                let bucket = (attempt.max(1) as usize - 1).min(RETRY_HIST_BUCKETS - 1);
                if self.actuator_retry_histogram.len() <= bucket {
                    self.actuator_retry_histogram.resize(bucket + 1, 0);
                }
                self.actuator_retry_histogram[bucket] += 1;
            }
            TraceKind::ActuatorEscalate { .. } => self.actuator_escalations += 1,
            TraceKind::SchedPassStart {
                queued,
                alloc_mb,
                cap_mb,
            } => {
                self.sched_passes += 1;
                let t = ev.t.as_secs();
                if t >= self.next_sample_s {
                    self.queue_depth_series.push((t, queued));
                    let util = if cap_mb > 0 {
                        alloc_mb as f64 / cap_mb as f64
                    } else {
                        0.0
                    };
                    self.pool_util_series.push((t, util));
                    // Skip ahead past any idle gap so a burst after a lull
                    // contributes one sample, not a backlog.
                    self.next_sample_s =
                        ((t / self.sample_interval_s).floor() + 1.0) * self.sample_interval_s;
                }
            }
            TraceKind::SchedPassEnd {
                considered,
                started,
                backfill_depth,
            } => {
                self.jobs_considered += u64::from(considered);
                self.jobs_placed += u64::from(started);
                self.max_backfill_depth = self.max_backfill_depth.max(backfill_depth);
            }
            TraceKind::NodeCrash { .. } => self.node_crashes += 1,
            TraceKind::NodeRepair { .. } => self.node_repairs += 1,
            TraceKind::PoolDegrade { .. } => self.pool_degrades += 1,
            TraceKind::PoolRestore { .. } => self.pool_restores += 1,
        }
    }
}

/// Folds the stream into a shared [`RunMetrics`]; clones share the
/// accumulator, so keep a handle and call [`CountingSink::metrics`]
/// after the run.
#[derive(Clone, Debug)]
pub struct CountingSink {
    shared: Arc<Mutex<RunMetrics>>,
}

impl CountingSink {
    /// Create a counter sampling the time series every
    /// `sample_interval_s` simulated seconds (min 1 s).
    pub fn new(sample_interval_s: f64) -> Self {
        Self {
            shared: Arc::new(Mutex::new(RunMetrics::new(sample_interval_s))),
        }
    }

    /// Snapshot of the accumulated metrics.
    pub fn metrics(&self) -> RunMetrics {
        self.shared.lock().expect("counting sink poisoned").clone()
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.shared.lock().expect("counting sink poisoned").fold(ev);
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimTime;
    use crate::job::JobId;

    #[test]
    fn counting_sink_builds_histogram_and_series() {
        let counting = CountingSink::new(10.0);
        let mut sink: Box<dyn TraceSink> = Box::new(counting.clone());
        for (t, attempt) in [(0.0, 1), (1.0, 1), (2.0, 2), (3.0, 99)] {
            sink.record(&TraceEvent {
                t: SimTime::from_secs(t),
                kind: TraceKind::ActuatorRetry {
                    job: JobId(0),
                    attempt,
                    backoff_s: 30.0,
                },
            });
        }
        for t in [0.0, 5.0, 10.0, 11.0, 35.0] {
            sink.record(&TraceEvent {
                t: SimTime::from_secs(t),
                kind: TraceKind::SchedPassStart {
                    queued: 4,
                    alloc_mb: 500,
                    cap_mb: 1000,
                },
            });
        }
        let m = counting.metrics();
        assert_eq!(m.actuator_retry_histogram[0], 2);
        assert_eq!(m.actuator_retry_histogram[1], 1);
        assert_eq!(m.actuator_retry_histogram[RETRY_HIST_BUCKETS - 1], 1);
        assert_eq!(m.sched_passes, 5);
        // Samples at t=0, t=10 (first crossing), t=35 (gap skipped).
        assert_eq!(
            m.queue_depth_series
                .iter()
                .map(|&(t, _)| t)
                .collect::<Vec<_>>(),
            vec![0.0, 10.0, 35.0]
        );
        assert!((m.pool_util_series[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(m.total_events, 9);
    }
}
