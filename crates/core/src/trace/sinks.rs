//! The [`TraceSink`] trait and every shipped sink.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use super::kinds::TraceEvent;

/// Where trace events go. Implementations must be cheap to clone
/// (`clone_box` — the runner is `Clone` for the bench fixtures) and
/// observation-only: a sink must never influence the simulation.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Whether this sink wants events at all. The runner caches the
    /// answer once at construction; `false` reduces every emit point to
    /// one predictable branch.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event. Called in simulation-time order.
    fn record(&mut self, ev: &TraceEvent);

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn TraceSink>;
}

impl Clone for Box<dyn TraceSink> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The zero-cost default sink: disabled, records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _ev: &TraceEvent) {}

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(NullSink)
    }
}

/// Bounded in-memory sink keeping the last N events. Clones share the
/// buffer, so callers keep a handle and read [`RingSink::events`] after
/// the run.
#[derive(Clone, Debug)]
pub struct RingSink {
    shared: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl RingSink {
    /// Create a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            shared: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared
            .lock()
            .expect("ring sink poisoned")
            .iter()
            .copied()
            .collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut buf = self.shared.lock().expect("ring sink poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(*ev);
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// Shared in-memory byte buffer implementing [`std::io::Write`]; the
/// convenient target for [`JsonlSink::buffered`].
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The buffered bytes as UTF-8 (the JSONL writer only emits ASCII).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("shared buf poisoned")).into_owned()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams one JSONL line per event to a writer. Clones share the
/// writer; the first write error is latched (see [`JsonlSink::error`])
/// and stops further output instead of panicking mid-run.
#[derive(Clone)]
pub struct JsonlSink {
    out: Arc<Mutex<Box<dyn std::io::Write + Send>>>,
    error: Arc<Mutex<Option<String>>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("error", &*self.error.lock().expect("jsonl sink poisoned"))
            .finish()
    }
}

impl JsonlSink {
    /// Stream into an arbitrary writer (a file, a pipe, a buffer).
    pub fn new(out: Box<dyn std::io::Write + Send>) -> Self {
        Self {
            out: Arc::new(Mutex::new(out)),
            error: Arc::new(Mutex::new(None)),
        }
    }

    /// Stream into a fresh in-memory buffer; returns the sink and a
    /// handle for reading the stream back after the run.
    pub fn buffered() -> (Self, SharedBuf) {
        let buf = SharedBuf::default();
        (Self::new(Box::new(buf.clone())), buf)
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<String> {
        self.error.lock().expect("jsonl sink poisoned").clone()
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("jsonl sink poisoned").flush()
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut err = self.error.lock().expect("jsonl sink poisoned");
        if err.is_some() {
            return;
        }
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let line = ev.to_jsonl();
        if let Err(e) = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
        {
            *err = Some(e.to_string());
        }
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// Duplicates every event to each child sink, in order.
#[derive(Debug)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl FanoutSink {
    /// Combine several sinks into one.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&mut self, ev: &TraceEvent) {
        for s in &mut self.sinks {
            s.record(ev);
        }
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(FanoutSink {
            sinks: self.sinks.iter().map(|s| s.clone_box()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::jsonl::validate_stream;
    use super::super::kinds::TraceKind;
    use super::*;
    use crate::cluster::NodeId;
    use crate::engine::SimTime;
    use crate::job::JobId;

    #[test]
    fn ring_sink_keeps_last_n() {
        let ring = RingSink::new(3);
        let mut sink: Box<dyn TraceSink> = Box::new(ring.clone());
        for i in 0..5u32 {
            sink.record(&TraceEvent {
                t: SimTime::from_secs(f64::from(i)),
                kind: TraceKind::JobSubmit { job: JobId(i) },
            });
        }
        let kept = ring.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].kind, TraceKind::JobSubmit { job: JobId(2) });
        assert_eq!(kept[2].kind, TraceKind::JobSubmit { job: JobId(4) });
    }

    #[test]
    fn fanout_and_null_compose() {
        let ring = RingSink::new(8);
        let fanout = FanoutSink::new(vec![Box::new(NullSink), Box::new(ring.clone())]);
        assert!(fanout.enabled());
        assert!(!FanoutSink::new(vec![Box::new(NullSink)]).enabled());
        let mut boxed: Box<dyn TraceSink> = Box::new(fanout);
        let cloned = boxed.clone();
        boxed.record(&TraceEvent {
            t: SimTime::ZERO,
            kind: TraceKind::NodeCrash { node: NodeId(0) },
        });
        drop(cloned);
        assert_eq!(ring.events().len(), 1);
        assert!(!NullSink.enabled());
    }

    #[test]
    fn jsonl_sink_streams_and_latches_errors() {
        let (mut sink, buf) = JsonlSink::buffered();
        sink.record(&TraceEvent {
            t: SimTime::from_secs(1.0),
            kind: TraceKind::JobSubmit { job: JobId(0) },
        });
        sink.record(&TraceEvent {
            t: SimTime::from_secs(2.0),
            kind: TraceKind::JobFinish {
                job: JobId(0),
                restarts: 0,
            },
        });
        let text = buf.contents();
        assert_eq!(text.lines().count(), 2);
        assert_eq!(validate_stream(text.lines()), Ok(2));
        assert!(sink.error().is_none());

        #[derive(Debug)]
        struct FailWriter;
        impl std::io::Write for FailWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut failing = JsonlSink::new(Box::new(FailWriter));
        failing.record(&TraceEvent {
            t: SimTime::ZERO,
            kind: TraceKind::JobSubmit { job: JobId(0) },
        });
        assert!(failing.error().unwrap().contains("disk full"));
    }
}
