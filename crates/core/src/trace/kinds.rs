//! The event taxonomy: what can happen in a run and when it happened.

use crate::cluster::NodeId;
use crate::engine::SimTime;
use crate::job::JobId;

/// One structured event: what happened ([`TraceKind`]) and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time at which the event fired.
    pub t: SimTime,
    /// The event payload.
    pub kind: TraceKind,
}

/// Why a running job was killed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillReason {
    /// Dynamic policy ran out of growable memory (§2.2 OOM).
    Oom,
    /// An injected fault (crash evacuation, irrecoverable degradation,
    /// Actuator escalation) took the job down.
    Fault,
    /// Static/baseline rule: usage exceeded the request (terminal).
    ExceededRequest,
}

impl KillReason {
    /// Stable lower-case name used in the JSONL stream.
    pub fn as_str(self) -> &'static str {
        match self {
            KillReason::Oom => "oom",
            KillReason::Fault => "fault",
            KillReason::ExceededRequest => "exceeded_request",
        }
    }
}

/// Which subsystem an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Subsystem {
    /// Job lifecycle (submit/start/finish/kill/requeue).
    Job,
    /// Dynamic-memory loop (decide/grow/shrink/monitor/actuator).
    Mem,
    /// Scheduler passes.
    Sched,
    /// Injected faults (crash/repair/degrade/restore).
    Fault,
}

impl Subsystem {
    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Job => "job",
            Subsystem::Mem => "mem",
            Subsystem::Sched => "sched",
            Subsystem::Fault => "fault",
        }
    }
}

/// The event taxonomy. Every variant is plain-old-data (`Copy`), so
/// constructing one on the emit path costs a handful of register moves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// A job entered the pending queue (first submission or resubmission
    /// after a kill).
    JobSubmit {
        /// The submitted job.
        job: JobId,
    },
    /// A job started running.
    JobStart {
        /// The started job.
        job: JobId,
        /// Compute nodes the job spans.
        nodes: u32,
        /// Total allocated memory, MB.
        mem_mb: u64,
        /// Portion of `mem_mb` borrowed from remote lenders, MB.
        remote_mb: u64,
    },
    /// A job completed successfully.
    JobFinish {
        /// The finished job.
        job: JobId,
        /// Restarts the job went through before completing.
        restarts: u32,
    },
    /// A running job was killed. A [`TraceKind::JobRequeue`] follows at
    /// the same instant unless the kill was terminal (exceeded-request,
    /// or the restart cap was hit).
    JobKill {
        /// The killed job.
        job: JobId,
        /// Why it was killed.
        reason: KillReason,
        /// Restart count after this kill.
        restarts: u32,
    },
    /// A killed job was resubmitted.
    JobRequeue {
        /// The resubmitted job.
        job: JobId,
        /// Whether the job now jumps to the queue head (§2.2 fairness).
        boosted: bool,
        /// Whether the job was demoted to a pinned static allocation.
        static_mode: bool,
    },
    /// The Decider compared demand against the allocation.
    MemDecide {
        /// The managed job.
        job: JobId,
        /// Monitor-sampled demand for the coming period, MB.
        demand_mb: u64,
        /// Total growth the decision requests across nodes, MB (0 on
        /// hold/shrink).
        grow_mb: u64,
        /// Per-node shrink target, MB (0 when the decision does not
        /// shrink; real targets are always positive).
        shrink_to_mb: u64,
    },
    /// The Executor grew one allocation entry.
    MemGrow {
        /// The growing job.
        job: JobId,
        /// The entry (compute node) that grew.
        node: NodeId,
        /// MB satisfied from the node's local free memory.
        local_mb: u64,
        /// MB borrowed from remote lenders.
        borrowed_mb: u64,
    },
    /// The Executor shrank an allocation (remote slices first).
    MemShrink {
        /// The shrinking job.
        job: JobId,
        /// MB returned to the pool.
        released_mb: u64,
    },
    /// An injected Monitor sample loss: the Decider saw nothing this
    /// period.
    MonitorLoss {
        /// The affected job.
        job: JobId,
    },
    /// An injected Actuator failure: the resize will be retried after a
    /// deterministic exponential backoff.
    ActuatorRetry {
        /// The affected job.
        job: JobId,
        /// Consecutive failed attempts so far (1 = first retry).
        attempt: u32,
        /// Backoff before the retry, seconds.
        backoff_s: f64,
    },
    /// The Actuator retry budget was exhausted; the job is killed and
    /// resubmitted down the §2.2 fairness ladder.
    ActuatorEscalate {
        /// The affected job.
        job: JobId,
        /// Failed attempts that exhausted the budget.
        attempts: u32,
    },
    /// A scheduling pass began with a non-empty queue window.
    SchedPassStart {
        /// Pending-queue depth at pass start.
        queued: u32,
        /// Memory currently allocated across the cluster, MB.
        alloc_mb: u64,
        /// Total cluster memory capacity, MB.
        cap_mb: u64,
    },
    /// The scheduling pass finished.
    SchedPassEnd {
        /// Jobs examined in the queue window.
        considered: u32,
        /// Jobs started by this pass.
        started: u32,
        /// Backfill candidates examined behind a blocked head.
        backfill_depth: u32,
    },
    /// An injected node crash took a node out of the pool.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node's repair completed.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// Pool-blade degradation removed capacity from a node.
    PoolDegrade {
        /// The degraded node.
        node: NodeId,
        /// Capacity that left the pool, MB.
        mb: u64,
    },
    /// Previously degraded capacity returned to the pool.
    PoolRestore {
        /// The restored node.
        node: NodeId,
        /// Capacity that returned, MB (clamped to the outstanding
        /// degradation).
        mb: u64,
    },
}

impl TraceKind {
    /// Every kind name, in taxonomy order. [`crate::trace::validate_stream`]
    /// rejects lines whose `kind` is not in this list.
    pub const NAMES: &'static [&'static str] = &[
        "job_submit",
        "job_start",
        "job_finish",
        "job_kill",
        "job_requeue",
        "mem_decide",
        "mem_grow",
        "mem_shrink",
        "monitor_loss",
        "actuator_retry",
        "actuator_escalate",
        "sched_pass_start",
        "sched_pass_end",
        "node_crash",
        "node_repair",
        "pool_degrade",
        "pool_restore",
    ];

    /// Stable snake-case name used as the JSONL `kind` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::JobSubmit { .. } => "job_submit",
            TraceKind::JobStart { .. } => "job_start",
            TraceKind::JobFinish { .. } => "job_finish",
            TraceKind::JobKill { .. } => "job_kill",
            TraceKind::JobRequeue { .. } => "job_requeue",
            TraceKind::MemDecide { .. } => "mem_decide",
            TraceKind::MemGrow { .. } => "mem_grow",
            TraceKind::MemShrink { .. } => "mem_shrink",
            TraceKind::MonitorLoss { .. } => "monitor_loss",
            TraceKind::ActuatorRetry { .. } => "actuator_retry",
            TraceKind::ActuatorEscalate { .. } => "actuator_escalate",
            TraceKind::SchedPassStart { .. } => "sched_pass_start",
            TraceKind::SchedPassEnd { .. } => "sched_pass_end",
            TraceKind::NodeCrash { .. } => "node_crash",
            TraceKind::NodeRepair { .. } => "node_repair",
            TraceKind::PoolDegrade { .. } => "pool_degrade",
            TraceKind::PoolRestore { .. } => "pool_restore",
        }
    }

    /// The subsystem this kind belongs to.
    pub fn subsystem(&self) -> Subsystem {
        match self {
            TraceKind::JobSubmit { .. }
            | TraceKind::JobStart { .. }
            | TraceKind::JobFinish { .. }
            | TraceKind::JobKill { .. }
            | TraceKind::JobRequeue { .. } => Subsystem::Job,
            TraceKind::MemDecide { .. }
            | TraceKind::MemGrow { .. }
            | TraceKind::MemShrink { .. }
            | TraceKind::MonitorLoss { .. }
            | TraceKind::ActuatorRetry { .. }
            | TraceKind::ActuatorEscalate { .. } => Subsystem::Mem,
            TraceKind::SchedPassStart { .. } | TraceKind::SchedPassEnd { .. } => Subsystem::Sched,
            TraceKind::NodeCrash { .. }
            | TraceKind::NodeRepair { .. }
            | TraceKind::PoolDegrade { .. }
            | TraceKind::PoolRestore { .. } => Subsystem::Fault,
        }
    }
}
