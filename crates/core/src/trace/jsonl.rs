//! The JSONL serialisation of the trace stream: a fixed-key-order
//! writer, a minimal flat parser, and stream validation.
//!
//! Hand-rolled because the vendored `serde` is a marker stub: the writer
//! emits flat objects with a fixed key order per kind, so equal runs
//! produce byte-identical streams.

use std::fmt::Write as _;

use super::kinds::{TraceEvent, TraceKind};

impl TraceEvent {
    /// Render the event as one JSONL line (no trailing newline). Key
    /// order is fixed per kind, so identical runs produce byte-identical
    /// streams.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{:.6},\"kind\":\"{}\"",
            self.t.as_secs(),
            self.kind.name()
        );
        match self.kind {
            TraceKind::JobSubmit { job } | TraceKind::MonitorLoss { job } => {
                let _ = write!(s, ",\"job\":{}", job.0);
            }
            TraceKind::JobStart {
                job,
                nodes,
                mem_mb,
                remote_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"nodes\":{nodes},\"mem_mb\":{mem_mb},\"remote_mb\":{remote_mb}",
                    job.0
                );
            }
            TraceKind::JobFinish { job, restarts } => {
                let _ = write!(s, ",\"job\":{},\"restarts\":{restarts}", job.0);
            }
            TraceKind::JobKill {
                job,
                reason,
                restarts,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"reason\":\"{}\",\"restarts\":{restarts}",
                    job.0,
                    reason.as_str()
                );
            }
            TraceKind::JobRequeue {
                job,
                boosted,
                static_mode,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"boosted\":{boosted},\"static_mode\":{static_mode}",
                    job.0
                );
            }
            TraceKind::MemDecide {
                job,
                demand_mb,
                grow_mb,
                shrink_to_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"demand_mb\":{demand_mb},\"grow_mb\":{grow_mb},\"shrink_to_mb\":{shrink_to_mb}",
                    job.0
                );
            }
            TraceKind::MemGrow {
                job,
                node,
                local_mb,
                borrowed_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"node\":{},\"local_mb\":{local_mb},\"borrowed_mb\":{borrowed_mb}",
                    job.0, node.0
                );
            }
            TraceKind::MemShrink { job, released_mb } => {
                let _ = write!(s, ",\"job\":{},\"released_mb\":{released_mb}", job.0);
            }
            TraceKind::ActuatorRetry {
                job,
                attempt,
                backoff_s,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"attempt\":{attempt},\"backoff_s\":{backoff_s:.3}",
                    job.0
                );
            }
            TraceKind::ActuatorEscalate { job, attempts } => {
                let _ = write!(s, ",\"job\":{},\"attempts\":{attempts}", job.0);
            }
            TraceKind::SchedPassStart {
                queued,
                alloc_mb,
                cap_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"queued\":{queued},\"alloc_mb\":{alloc_mb},\"cap_mb\":{cap_mb}"
                );
            }
            TraceKind::SchedPassEnd {
                considered,
                started,
                backfill_depth,
            } => {
                let _ = write!(
                    s,
                    ",\"considered\":{considered},\"started\":{started},\"backfill_depth\":{backfill_depth}"
                );
            }
            TraceKind::NodeCrash { node } | TraceKind::NodeRepair { node } => {
                let _ = write!(s, ",\"node\":{}", node.0);
            }
            TraceKind::PoolDegrade { node, mb } | TraceKind::PoolRestore { node, mb } => {
                let _ = write!(s, ",\"node\":{},\"mb\":{mb}", node.0);
            }
        }
        s.push('}');
        s
    }
}

/// A parsed JSONL field value (the format only emits numbers, strings,
/// and booleans).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

/// One JSONL line read back as data.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedEvent {
    /// Simulation time, seconds.
    pub t: f64,
    /// The kind name (e.g. `"job_start"`).
    pub kind: String,
    /// The remaining fields, in stream order.
    pub fields: Vec<(String, JsonValue)>,
}

impl ParsedEvent {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Parse one flat JSONL object produced by [`TraceEvent::to_jsonl`].
///
/// This is a minimal hand-rolled parser (the vendored `serde` cannot
/// deserialize): it accepts exactly the flat `{"key":value,…}` shape the
/// writer emits, requires `t` and `kind`, and rejects everything else
/// with a description of the offending byte.
///
/// # Errors
/// Returns a human-readable description of the first syntax problem.
pub fn parse_jsonl(line: &str) -> Result<ParsedEvent, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut t: Option<f64> = None;
    let mut kind: Option<String> = None;
    let mut fields = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        if !fields.is_empty() || t.is_some() || kind.is_some() {
            p.expect(b',')?;
            p.skip_ws();
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.value()?;
        match (key.as_str(), &value) {
            ("t", JsonValue::Num(v)) => t = Some(*v),
            ("t", _) => return Err("field 't' must be a number".into()),
            ("kind", JsonValue::Str(v)) => kind = Some(v.clone()),
            ("kind", _) => return Err("field 'kind' must be a string".into()),
            _ => fields.push((key, value)),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(ParsedEvent {
        t: t.ok_or("missing field 't'")?,
        kind: kind.ok_or("missing field 'kind'")?,
        fields,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => return Err("escape sequences are not part of the format".into()),
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            Some(&b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            other => Err(format!(
                "unexpected value at offset {}: {:?}",
                self.pos,
                other.map(|&c| c as char)
            )),
        }
    }
}

/// Validate a JSONL event stream: every non-empty line must parse, name
/// a known kind, and carry a sim-time no earlier than the previous
/// line's. Returns the number of events.
///
/// # Errors
/// Returns `"line N: …"` for the first offending line.
pub fn validate_stream<'a>(lines: impl Iterator<Item = &'a str>) -> Result<usize, String> {
    let mut last_t = f64::NEG_INFINITY;
    let mut count = 0usize;
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !TraceKind::NAMES.contains(&ev.kind.as_str()) {
            return Err(format!("line {}: unknown kind '{}'", i + 1, ev.kind));
        }
        if ev.t < last_t {
            return Err(format!(
                "line {}: sim-time went backwards ({} after {})",
                i + 1,
                ev.t,
                last_t
            ));
        }
        last_t = ev.t;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::super::kinds::KillReason;
    use super::*;
    use crate::cluster::NodeId;
    use crate::engine::SimTime;
    use crate::job::JobId;

    fn every_kind() -> Vec<TraceKind> {
        vec![
            TraceKind::JobSubmit { job: JobId(1) },
            TraceKind::JobStart {
                job: JobId(1),
                nodes: 2,
                mem_mb: 4096,
                remote_mb: 1024,
            },
            TraceKind::JobFinish {
                job: JobId(1),
                restarts: 3,
            },
            TraceKind::JobKill {
                job: JobId(1),
                reason: KillReason::Oom,
                restarts: 1,
            },
            TraceKind::JobRequeue {
                job: JobId(1),
                boosted: true,
                static_mode: false,
            },
            TraceKind::MemDecide {
                job: JobId(1),
                demand_mb: 2048,
                grow_mb: 512,
                shrink_to_mb: 0,
            },
            TraceKind::MemGrow {
                job: JobId(1),
                node: NodeId(7),
                local_mb: 256,
                borrowed_mb: 256,
            },
            TraceKind::MemShrink {
                job: JobId(1),
                released_mb: 300,
            },
            TraceKind::MonitorLoss { job: JobId(1) },
            TraceKind::ActuatorRetry {
                job: JobId(1),
                attempt: 2,
                backoff_s: 60.0,
            },
            TraceKind::ActuatorEscalate {
                job: JobId(1),
                attempts: 4,
            },
            TraceKind::SchedPassStart {
                queued: 10,
                alloc_mb: 5000,
                cap_mb: 10000,
            },
            TraceKind::SchedPassEnd {
                considered: 10,
                started: 4,
                backfill_depth: 6,
            },
            TraceKind::NodeCrash { node: NodeId(3) },
            TraceKind::NodeRepair { node: NodeId(3) },
            TraceKind::PoolDegrade {
                node: NodeId(3),
                mb: 8192,
            },
            TraceKind::PoolRestore {
                node: NodeId(3),
                mb: 8192,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_jsonl() {
        let kinds = every_kind();
        assert_eq!(kinds.len(), TraceKind::NAMES.len());
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = TraceEvent {
                t: SimTime::from_secs(i as f64 + 0.5),
                kind,
            };
            let line = ev.to_jsonl();
            let parsed = parse_jsonl(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed.kind, kind.name(), "{line}");
            assert!((parsed.t - ev.t.as_secs()).abs() < 1e-9);
            assert_eq!(
                TraceKind::NAMES[i],
                kind.name(),
                "NAMES order matches taxonomy"
            );
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"t\":1.0}",
            "{\"kind\":\"job_submit\"}",
            "{\"t\":\"x\",\"kind\":\"job_submit\"}",
            "{\"t\":1.0,\"kind\":\"job_submit\"} trailing",
            "{\"t\":1.0 \"kind\":\"job_submit\"}",
            "not json",
        ] {
            assert!(parse_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validate_stream_checks_kind_and_monotonicity() {
        let good = "{\"t\":1.0,\"kind\":\"job_submit\",\"job\":0}\n{\"t\":1.0,\"kind\":\"job_start\",\"job\":0,\"nodes\":1,\"mem_mb\":1,\"remote_mb\":0}";
        assert_eq!(validate_stream(good.lines()), Ok(2));

        let unknown = "{\"t\":1.0,\"kind\":\"warp_drive\"}";
        assert!(validate_stream(unknown.lines())
            .unwrap_err()
            .contains("unknown kind"));

        let backwards = "{\"t\":2.0,\"kind\":\"job_submit\",\"job\":0}\n{\"t\":1.0,\"kind\":\"job_submit\",\"job\":1}";
        assert!(validate_stream(backwards.lines())
            .unwrap_err()
            .contains("went backwards"));
    }
}
