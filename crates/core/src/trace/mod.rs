//! Structured per-run event tracing.
//!
//! Every interesting transition in a run — job lifecycle, dynamic-memory
//! actions, scheduler passes, injected faults — can be emitted as a
//! [`TraceEvent`] through a [`TraceSink`]. The default sink is
//! [`NullSink`], whose `enabled()` check the runner caches in a single
//! bool so the allocation-free scheduling hot path pays one predictable
//! branch and nothing else. Tracing is strictly observational: sinks
//! receive `&TraceEvent` and cannot influence the simulation, so any
//! run's outcome is bit-identical with or without a sink attached.
//!
//! Sinks provided here:
//!
//! * [`NullSink`] — zero-cost default (`enabled() == false`).
//! * [`RingSink`] — bounded in-memory buffer of the last N events, for
//!   post-mortems on OOM storms or seed divergence.
//! * [`JsonlSink`] — streams one JSON object per line to any writer.
//! * [`CountingSink`] — folds the stream into a [`RunMetrics`] summary
//!   (per-subsystem counts, Actuator retry histogram, queue-depth and
//!   pool-utilisation time series).
//! * [`FanoutSink`] — duplicates events to several sinks.
//!
//! The JSONL format is hand-rolled (the vendored `serde` is a marker
//! stub): flat objects with a fixed key order per kind, so equal runs
//! produce byte-identical streams. [`parse_jsonl`] and
//! [`validate_stream`] read the format back for filtering, diffing and
//! CI validation.
//!
//! The module tree splits the surface by concern, in the
//! `core::cluster` decomposition style:
//!
//! * [`kinds`] — the event taxonomy ([`TraceEvent`], [`TraceKind`],
//!   [`KillReason`], [`Subsystem`]);
//! * [`sinks`] — the [`TraceSink`] trait and every shipped sink;
//! * [`jsonl`] — the fixed-key-order JSONL writer, the flat parser,
//!   and stream validation;
//! * [`metrics`] — the [`RunMetrics`] fold behind [`CountingSink`].

pub mod jsonl;
pub mod kinds;
pub mod metrics;
pub mod sinks;

pub use jsonl::{parse_jsonl, validate_stream, JsonValue, ParsedEvent};
pub use kinds::{KillReason, Subsystem, TraceEvent, TraceKind};
pub use metrics::{CountingSink, RunMetrics};
pub use sinks::{FanoutSink, JsonlSink, NullSink, RingSink, SharedBuf, TraceSink};
