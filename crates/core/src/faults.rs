//! Seeded, deterministic fault injection for the dynamic-memory loop.
//!
//! The simulator's fault model covers four failure classes of a
//! disaggregated-memory machine:
//!
//! * **Node crashes** — a node goes down for a configurable repair time;
//!   its resident job is killed and resubmitted under the configured
//!   restart strategy, and every borrow served from the node is revoked.
//! * **Pool-blade degradation** — a slice of a node's DRAM drops out of
//!   the lending pool mid-run (a failing CXL blade, a capacity fence);
//!   the Actuator reclaims remote MB, shrinking borrowers remote-first
//!   before falling back to the §2.2 static-guaranteed allocation.
//! * **Monitor sample loss** — a memory-usage sample never reaches the
//!   Decider, which keeps acting on the last-known demand; a job whose
//!   true usage outgrew that stale allocation OOMs.
//! * **Actuator transient failures** — grow/shrink attempts fail with
//!   probability `p` and are retried with bounded exponential backoff
//!   before escalating to kill-and-resubmit.
//!
//! Crash and degradation schedules are **pre-generated** from
//! [`FaultConfig::seed`] by [`FaultSchedule::generate`] before the run
//! starts; sample-loss and actuation failures draw from a dedicated
//! [`Rng64`] stream keyed by the same seed. There is no wall-clock
//! anywhere: a fixed seed reproduces a faulty run bit for bit, and a
//! config with every rate at zero produces *no* schedule and *no* RNG
//! draws, leaving fault-free runs byte-identical to builds without this
//! module.

use crate::cluster::NodeId;
use crate::engine::SimTime;
use crate::error::CoreError;
use dmhpc_model::rng::Rng64;
use serde::{Deserialize, Serialize};

/// Per-node crash streams are keyed off this base so they are
/// independent of each other and of the pool-degradation stream.
const STREAM_NODE_CRASH: u64 = 0xFA11_0000;
/// Stream id for the pool-degradation renewal process.
const STREAM_POOL_DEGRADE: u64 = 0xDE64_AB1E;

/// Fault-injection rates and repair times. All rates default to zero
/// (no faults); [`FaultConfig::enabled`] reports whether any class is
/// active.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the fault schedule and the sample-loss/actuation streams.
    /// Independent of the simulation seed so fault scenarios can be
    /// varied while holding the workload fixed.
    pub seed: u64,
    /// Mean time between failures per node, seconds (exponential
    /// interarrival). Zero disables node crashes.
    pub node_mtbf_s: f64,
    /// Downtime per crash before the node rejoins the pool, seconds.
    pub node_repair_s: f64,
    /// Mean time between pool-blade degradation events across the whole
    /// machine, seconds. Zero disables degradation.
    pub pool_degrade_interval_s: f64,
    /// Capacity lost per degradation event, MB (capped so a node's
    /// outstanding degradation never exceeds its capacity).
    pub pool_degrade_mb: u64,
    /// Time until a degraded slice is restored, seconds.
    pub pool_repair_s: f64,
    /// Probability that a Monitor usage sample is lost in transit.
    pub monitor_loss_prob: f64,
    /// Probability that an Actuator grow/shrink attempt fails
    /// transiently.
    pub actuator_fail_prob: f64,
    /// Failed actuations are retried this many times before the job is
    /// killed and resubmitted.
    pub actuator_max_retries: u32,
    /// Base retry delay, seconds; attempt `k` waits `backoff · 2^(k−1)`.
    pub actuator_backoff_s: f64,
    /// Crash/degradation schedules are generated out to this horizon,
    /// seconds. Repairs for faults inside the horizon are always
    /// scheduled, so the machine ends the run whole.
    pub horizon_s: f64,
}

impl FaultConfig {
    /// The fault-free configuration: every rate zero, sane repair and
    /// retry parameters for configs that flip a single class on.
    pub fn none() -> Self {
        Self {
            seed: 0x5EED_FA17,
            node_mtbf_s: 0.0,
            node_repair_s: 3_600.0,
            pool_degrade_interval_s: 0.0,
            pool_degrade_mb: 0,
            pool_repair_s: 7_200.0,
            monitor_loss_prob: 0.0,
            actuator_fail_prob: 0.0,
            actuator_max_retries: 3,
            actuator_backoff_s: 30.0,
            horizon_s: 14.0 * 86_400.0,
        }
    }

    /// A mild fault profile: rare crashes, occasional blade degradation,
    /// 2% sample loss and actuation failure.
    pub fn light() -> Self {
        Self {
            node_mtbf_s: 1_000_000.0,
            pool_degrade_interval_s: 250_000.0,
            pool_degrade_mb: 8 * 1024,
            pool_repair_s: 50_000.0,
            monitor_loss_prob: 0.02,
            actuator_fail_prob: 0.02,
            ..Self::none()
        }
    }

    /// An aggressive fault profile: frequent crashes and degradation,
    /// 10% sample loss and actuation failure, slower repairs.
    pub fn heavy() -> Self {
        Self {
            node_mtbf_s: 200_000.0,
            node_repair_s: 7_200.0,
            pool_degrade_interval_s: 50_000.0,
            pool_degrade_mb: 16 * 1024,
            pool_repair_s: 100_000.0,
            monitor_loss_prob: 0.10,
            actuator_fail_prob: 0.10,
            actuator_max_retries: 2,
            actuator_backoff_s: 60.0,
            ..Self::none()
        }
    }

    /// Look up a named profile: `none`, `light`, or `heavy`.
    pub fn profile(name: &str) -> Result<Self, CoreError> {
        match name {
            "none" => Ok(Self::none()),
            "light" => Ok(Self::light()),
            "heavy" => Ok(Self::heavy()),
            other => Err(CoreError::invalid_config(format!(
                "unknown fault profile '{other}' (expected none, light, or heavy)"
            ))),
        }
    }

    /// Builder: replace the fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any fault class is active.
    pub fn enabled(&self) -> bool {
        self.node_mtbf_s > 0.0
            || (self.pool_degrade_interval_s > 0.0 && self.pool_degrade_mb > 0)
            || self.monitor_loss_prob > 0.0
            || self.actuator_fail_prob > 0.0
    }

    /// Validate rates and times; returns the first violation found.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::InvalidConfig(msg));
        for (name, v) in [
            ("node_mtbf_s", self.node_mtbf_s),
            ("node_repair_s", self.node_repair_s),
            ("pool_degrade_interval_s", self.pool_degrade_interval_s),
            ("pool_repair_s", self.pool_repair_s),
            ("actuator_backoff_s", self.actuator_backoff_s),
            ("horizon_s", self.horizon_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return bad(format!("fault {name} must be finite and >= 0, got {v}"));
            }
        }
        for (name, p) in [
            ("monitor_loss_prob", self.monitor_loss_prob),
            ("actuator_fail_prob", self.actuator_fail_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return bad(format!("fault {name} must be within [0, 1], got {p}"));
            }
        }
        if self.node_mtbf_s > 0.0 && self.node_repair_s <= 0.0 {
            return bad("node_repair_s must be > 0 when node crashes are enabled".into());
        }
        if self.pool_degrade_interval_s > 0.0 && self.pool_repair_s <= 0.0 {
            return bad("pool_repair_s must be > 0 when pool degradation is enabled".into());
        }
        if self.actuator_fail_prob > 0.0 && self.actuator_backoff_s <= 0.0 {
            return bad("actuator_backoff_s must be > 0 when actuation faults are enabled".into());
        }
        if self.actuator_max_retries > 32 {
            return bad(format!(
                "actuator_max_retries must be <= 32, got {}",
                self.actuator_max_retries
            ));
        }
        if (self.node_mtbf_s > 0.0 || self.pool_degrade_interval_s > 0.0) && self.horizon_s <= 0.0 {
            return bad("horizon_s must be > 0 when scheduled faults are enabled".into());
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// One injected fault, addressed to the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The node crashes: resident job killed, borrows revoked, node out
    /// of the pool until its repair.
    NodeFail {
        /// The crashing node.
        node: NodeId,
    },
    /// The node's repair completes; it rejoins the pool empty.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// `mb` of the node's DRAM leaves the lending pool.
    PoolDegrade {
        /// The node losing blade capacity.
        node: NodeId,
        /// Capacity lost, MB.
        mb: u64,
    },
    /// A previously degraded slice comes back.
    PoolRestore {
        /// The node regaining blade capacity.
        node: NodeId,
        /// Capacity restored, MB.
        mb: u64,
    },
}

impl FaultEvent {
    /// The trace event this fault appears as once the recovery handlers
    /// apply it. Handlers emit through this mapping (with clamped
    /// amounts where applicable), so the trace stream records faults
    /// that took effect, not every scheduled one.
    pub fn trace_kind(self) -> crate::trace::TraceKind {
        use crate::trace::TraceKind;
        match self {
            FaultEvent::NodeFail { node } => TraceKind::NodeCrash { node },
            FaultEvent::NodeRepair { node } => TraceKind::NodeRepair { node },
            FaultEvent::PoolDegrade { node, mb } => TraceKind::PoolDegrade { node, mb },
            FaultEvent::PoolRestore { node, mb } => TraceKind::PoolRestore { node, mb },
        }
    }
}

/// A time-sorted, pre-generated schedule of [`FaultEvent`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Events sorted by time; ties keep generation order (crashes by
    /// node id, then degradations).
    pub events: Vec<(SimTime, FaultEvent)>,
}

impl FaultSchedule {
    /// Generate the crash and degradation schedule for a machine whose
    /// node `i` has `capacities[i]` MB of DRAM.
    ///
    /// * Per-node crashes follow a renewal process — exponential uptime
    ///   with mean [`FaultConfig::node_mtbf_s`], then a fixed repair
    ///   window — drawn from a per-node RNG stream, so one node's crash
    ///   history never perturbs another's.
    /// * Degradation events arrive machine-wide with exponential
    ///   interarrival, strike a uniformly chosen node, and are capped so
    ///   a node's outstanding degradation never exceeds its capacity
    ///   (events that would are skipped). Every degrade is paired with a
    ///   restore [`FaultConfig::pool_repair_s`] later.
    ///
    /// Events past [`FaultConfig::horizon_s`] are not generated, but
    /// repairs/restores of in-horizon faults always are: the machine is
    /// guaranteed whole after `horizon + max(repair)` seconds, which
    /// bounds how long a requeued job can stay unplaceable.
    pub fn generate(cfg: &FaultConfig, capacities: &[u64]) -> Self {
        let mut events: Vec<(SimTime, FaultEvent)> = Vec::new();
        if cfg.node_mtbf_s > 0.0 {
            for (i, _) in capacities.iter().enumerate() {
                let node = NodeId(i as u32);
                let mut rng = Rng64::stream(cfg.seed, STREAM_NODE_CRASH ^ i as u64);
                let mut t = 0.0f64;
                loop {
                    t += rng.exponential(1.0 / cfg.node_mtbf_s);
                    if t >= cfg.horizon_s {
                        break;
                    }
                    events.push((SimTime::from_secs(t), FaultEvent::NodeFail { node }));
                    t += cfg.node_repair_s;
                    events.push((SimTime::from_secs(t), FaultEvent::NodeRepair { node }));
                }
            }
        }
        if cfg.pool_degrade_interval_s > 0.0 && cfg.pool_degrade_mb > 0 && !capacities.is_empty() {
            let mut rng = Rng64::stream(cfg.seed, STREAM_POOL_DEGRADE);
            // Outstanding degradation per node as (restore_time, mb)
            // slices, purged as generation time passes them.
            let mut outstanding: Vec<Vec<(f64, u64)>> = vec![Vec::new(); capacities.len()];
            let mut t = 0.0f64;
            loop {
                t += rng.exponential(1.0 / cfg.pool_degrade_interval_s);
                if t >= cfg.horizon_s {
                    break;
                }
                let victim = rng.below(capacities.len() as u64) as usize;
                let slices = &mut outstanding[victim];
                slices.retain(|&(restore, _)| restore > t);
                let held: u64 = slices.iter().map(|&(_, mb)| mb).sum();
                let mb = cfg.pool_degrade_mb.min(capacities[victim] - held);
                if mb == 0 {
                    continue;
                }
                let node = NodeId(victim as u32);
                let restore_at = t + cfg.pool_repair_s;
                slices.push((restore_at, mb));
                events.push((SimTime::from_secs(t), FaultEvent::PoolDegrade { node, mb }));
                events.push((
                    SimTime::from_secs(restore_at),
                    FaultEvent::PoolRestore { node, mb },
                ));
            }
        }
        // Stable by time: ties keep generation order, so the schedule is
        // a pure function of (seed, capacities).
        events.sort_by_key(|&(t, _)| t);
        Self { events }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_generate_nothing() {
        let cfg = FaultConfig::none();
        assert!(!cfg.enabled());
        let s = FaultSchedule::generate(&cfg, &[1024; 8]);
        assert!(s.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::heavy().with_seed(42);
        let caps = vec![128 * 1024; 16];
        let a = FaultSchedule::generate(&cfg, &caps);
        let b = FaultSchedule::generate(&cfg, &caps);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "heavy profile must generate events");
        let c = FaultSchedule::generate(&cfg.with_seed(43), &caps);
        assert_ne!(a, c, "different seeds must generate different schedules");
    }

    #[test]
    fn schedule_is_time_sorted() {
        let cfg = FaultConfig::heavy().with_seed(7);
        let s = FaultSchedule::generate(&cfg, &[128 * 1024; 32]);
        assert!(s.events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn crashes_pair_with_repairs_without_overlap() {
        let cfg = FaultConfig::heavy().with_seed(11);
        let s = FaultSchedule::generate(&cfg, &[128 * 1024; 8]);
        for i in 0..8u32 {
            let node = NodeId(i);
            let mine: Vec<_> = s
                .events
                .iter()
                .filter(|(_, e)| {
                    matches!(e, FaultEvent::NodeFail { node: n } | FaultEvent::NodeRepair { node: n } if *n == node)
                })
                .collect();
            // Strictly alternating fail/repair per node: no overlap.
            for (k, (_, e)) in mine.iter().enumerate() {
                if k % 2 == 0 {
                    assert!(matches!(e, FaultEvent::NodeFail { .. }));
                } else {
                    assert!(matches!(e, FaultEvent::NodeRepair { .. }));
                }
            }
            assert_eq!(mine.len() % 2, 0, "every fail has its repair");
        }
    }

    #[test]
    fn degradation_never_exceeds_capacity() {
        let cfg = FaultConfig {
            pool_degrade_interval_s: 1_000.0,
            pool_degrade_mb: 100 * 1024, // huge vs. the 128 GB nodes
            pool_repair_s: 500_000.0,    // slices pile up
            horizon_s: 200_000.0,
            ..FaultConfig::none()
        };
        let caps = vec![128 * 1024u64; 4];
        let s = FaultSchedule::generate(&cfg, &caps);
        let mut held = [0i64; 4];
        for &(_, e) in &s.events {
            match e {
                FaultEvent::PoolDegrade { node, mb } => {
                    held[node.0 as usize] += mb as i64;
                    assert!(held[node.0 as usize] <= caps[node.0 as usize] as i64);
                }
                FaultEvent::PoolRestore { node, mb } => held[node.0 as usize] -= mb as i64,
                _ => {}
            }
        }
    }

    #[test]
    fn profiles_parse_and_validate() {
        for name in ["none", "light", "heavy"] {
            let p = FaultConfig::profile(name).unwrap();
            p.validate().unwrap();
            assert_eq!(p.enabled(), name != "none");
        }
        assert!(FaultConfig::profile("chaos").is_err());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut cfg = FaultConfig::none();
        cfg.monitor_loss_prob = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::none();
        cfg.node_mtbf_s = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::light();
        cfg.actuator_backoff_s = 0.0;
        cfg.actuator_fail_prob = 0.5;
        assert!(cfg.validate().is_err());
    }
}
