//! Discrete-event engine: simulated time and the event queue.
//!
//! Time is an integer number of **microseconds** ([`SimTime`]) so that
//! event ordering is exact — float timestamps accumulate rounding error
//! and make runs non-reproducible when slowdowns change job end times.
//!
//! Job-end and memory-update events are *re-schedulable*: when a job's
//! speed changes, its pending events become stale. Rather than removing
//! them from the heap (O(n)), each carries an **epoch**; the simulation
//! bumps the job's epoch and pushes a fresh event, and stale pops are
//! discarded (standard lazy deletion).

use crate::cluster::NodeId;
use crate::job::JobId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in integer microseconds since the start of the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Convert from seconds (fractional part kept to µs precision;
    /// negative values clamp to zero).
    pub fn from_secs(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Convert to (fractional) seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a duration in seconds.
    pub fn plus_secs(self, s: f64) -> Self {
        SimTime(self.0.saturating_add((s.max(0.0) * 1e6).round() as u64))
    }
}

impl std::ops::Sub for SimTime {
    type Output = f64;
    /// Difference in seconds (saturating at zero when rhs > lhs).
    #[allow(clippy::suspicious_arithmetic_impl)] // µs → s conversion
    fn sub(self, rhs: SimTime) -> f64 {
        self.0.saturating_sub(rhs.0) as f64 / 1e6
    }
}

/// What can happen in the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A job arrives in the pending queue.
    Submit(JobId),
    /// Periodic scheduler pass (FCFS + backfill), every 30 s.
    SchedTick,
    /// A job completes its work. Stale if the epoch doesn't match.
    JobEnd {
        /// The finishing job.
        job: JobId,
        /// Epoch at scheduling time; compared against the job's current
        /// epoch on pop.
        epoch: u32,
    },
    /// Dynamic policy: re-read the job's memory usage and adjust its
    /// allocation. Stale if the epoch doesn't match.
    MemUpdate {
        /// The job whose usage is re-read.
        job: JobId,
        /// Epoch at scheduling time.
        epoch: u32,
    },
    /// Fault injection: the node crashes (resident job killed, borrows
    /// revoked, node out of the pool until repair).
    NodeFail {
        /// The crashing node.
        node: NodeId,
    },
    /// Fault injection: the node's repair completes.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// Fault injection: `mb` of the node's DRAM leaves the lending pool.
    PoolDegrade {
        /// The degrading node.
        node: NodeId,
        /// Capacity lost, MB.
        mb: u64,
    },
    /// Fault injection: a previously degraded slice comes back.
    PoolRestore {
        /// The restored node.
        node: NodeId,
        /// Capacity restored, MB.
        mb: u64,
    },
}

/// An event at a point in simulated time. `seq` breaks ties FIFO so
/// same-timestamp events process in insertion order (determinism).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of events ordered by `(time, seq)`.
///
/// Lazy deletion leaves stale `JobEnd`/`MemUpdate` events in the heap
/// until they are popped. Under the dynamic policy a long-running
/// borrower can be re-timed many times between pops, so the heap can
/// grow well past the live event count. Callers report superseded
/// events via [`note_stale`](Self::note_stale); once
/// [`should_compact`](Self::should_compact) trips, a single
/// [`compact`](Self::compact) sweep rebuilds the heap from the live
/// events. Surviving events keep their original `(time, seq)` keys, so
/// compaction never changes pop order — it is invisible to the
/// simulation outcome.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    /// Events known to be stale (superseded by a newer epoch) but still
    /// sitting in the heap. Decremented when a stale event pops.
    stale: usize,
}

/// Compact once the heap holds at least this many events *and* stale
/// events outnumber live ones. The floor keeps small runs (where a full
/// rebuild costs more than it saves) on the pure lazy-deletion path.
const COMPACT_MIN_LEN: usize = 1024;

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events (including stale ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Record that `n` queued events just became stale (their job's
    /// epoch advanced past them).
    pub fn note_stale(&mut self, n: usize) {
        self.stale += n;
    }

    /// Record that a popped event turned out to be stale.
    pub fn note_stale_popped(&mut self) {
        self.stale = self.stale.saturating_sub(1);
    }

    /// Number of events currently believed stale.
    pub fn stale(&self) -> usize {
        self.stale
    }

    /// Whether the stale fraction warrants a [`compact`](Self::compact)
    /// sweep (heap at least `COMPACT_MIN_LEN` long and more than half
    /// stale).
    pub fn should_compact(&self) -> bool {
        self.heap.len() >= COMPACT_MIN_LEN && self.stale * 2 > self.heap.len()
    }

    /// Drop every queued event for which `keep` returns `false`,
    /// preserving the `(time, seq)` keys of survivors (pop order is
    /// unchanged). Resets the stale counter.
    pub fn compact<F: FnMut(&Event) -> bool>(&mut self, mut keep: F) {
        let events = std::mem::take(&mut self.heap).into_vec();
        self.heap = events.into_iter().filter(|Reverse(e)| keep(e)).collect();
        self.stale = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_roundtrip() {
        let t = SimTime::from_secs(123.456789);
        assert!((t.as_secs() - 123.456789).abs() < 1e-6);
        assert_eq!(SimTime::from_secs(-5.0), SimTime::ZERO);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_secs(10.0);
        let b = a.plus_secs(5.5);
        assert!((b - a - 5.5).abs() < 1e-9);
        // Saturating subtraction.
        assert_eq!(a - b, 0.0);
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30.0), EventKind::SchedTick);
        q.push(SimTime::from_secs(10.0), EventKind::Submit(JobId(1)));
        q.push(SimTime::from_secs(20.0), EventKind::Submit(JobId(2)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(JobId(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Submit(JobId(2)));
        assert_eq!(q.pop().unwrap().kind, EventKind::SchedTick);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, EventKind::Submit(JobId(i)));
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().kind, EventKind::Submit(JobId(i)));
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7.0), EventKind::SchedTick);
        q.push(SimTime::from_secs(3.0), EventKind::SchedTick);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3.0)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7.0)));
    }

    #[test]
    fn compact_preserves_pop_order_of_survivors() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..50 {
            q.push(
                t,
                EventKind::JobEnd {
                    job: JobId(i),
                    epoch: 0,
                },
            );
        }
        // Mark odd jobs stale and compact them away.
        q.note_stale(25);
        assert_eq!(q.stale(), 25);
        q.compact(|e| match e.kind {
            EventKind::JobEnd { job, .. } => job.0 % 2 == 0,
            _ => true,
        });
        assert_eq!(q.stale(), 0);
        assert_eq!(q.len(), 25);
        // Survivors pop in the original insertion (seq) order.
        for i in (0..50).step_by(2) {
            assert_eq!(
                q.pop().unwrap().kind,
                EventKind::JobEnd {
                    job: JobId(i),
                    epoch: 0
                }
            );
        }
    }

    #[test]
    fn should_compact_requires_size_and_stale_majority() {
        let mut q = EventQueue::new();
        for i in 0..600 {
            q.push(SimTime::ZERO, EventKind::Submit(JobId(i)));
        }
        q.note_stale(400);
        // Majority stale but below the size floor: no compaction.
        assert!(!q.should_compact());
        for i in 600..1200 {
            q.push(SimTime::ZERO, EventKind::Submit(JobId(i)));
        }
        // Big enough but stale is now a minority.
        assert!(!q.should_compact());
        q.note_stale(300);
        assert!(q.should_compact());
        q.compact(|_| true);
        assert!(!q.should_compact());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, EventKind::SchedTick);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
