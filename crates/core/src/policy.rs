//! Memory allocation policies (paper §3.5).
//!
//! * **Baseline** — no disaggregated memory: a job runs only on nodes
//!   whose whole DRAM satisfies the request, and it gets the node's full
//!   memory exclusively.
//! * **Static** — disaggregated memory with a fixed allocation equal to
//!   the submission request (Zacarias et al., ICPADS'21): prefer nodes
//!   with enough free memory; otherwise pick the nodes with the most free
//!   memory and borrow the remainder from lender nodes.
//! * **Dynamic** — same initial allocation as Static, then the
//!   Monitor→Decider→Actuator→Executor loop resizes the allocation to
//!   track actual usage (this paper, §2.2). Growth is local-first then
//!   remote; shrinking releases remote memory first.
//!
//! Three extensions beyond the paper's comparison live in submodules
//! behind the same [`MemoryPolicy`] trait — [`predictive`] (class-
//! history sizing), [`overcommit`] (admission at a scaled request), and
//! [`conservative`] (quantized growth). The parameterized construction
//! API over all six is [`PolicySpec`]; [`PolicyKind`] remains as a thin
//! compatibility enum for the paper's three.
//!
//! Placement functions are pure with respect to the cluster (they only
//! read); the simulation applies the returned [`JobAlloc`] through
//! [`Cluster::start_job`] / [`Cluster::grow_entry`].
//!
//! Placement runs off the cluster's persistent free-memory indexes
//! ([`Cluster::schedulable_by_free_asc`] and friends), so a successful
//! phase-1 placement costs O(log N + n) instead of an O(N log N) scan
//! and sort. The original full-scan implementation is kept as
//! [`try_place_reference`] / [`plan_growth_reference`]: property tests
//! assert the two agree exactly, and the benchmark harness measures the
//! speedup between them.

use crate::cluster::{AllocEntry, Cluster, JobAlloc, NodeId};
use crate::error::CoreError;
use crate::sim::hooks::{Baseline, DynamicAlloc, MemoryPolicy, StaticAlloc};
use serde::{Deserialize, Serialize};

pub mod conservative;
pub mod overcommit;
pub mod predictive;
pub mod spec;

pub use conservative::ConservativeGrowth;
pub use overcommit::Overcommit;
pub use predictive::Predictive;
pub use spec::{PolicyInfo, PolicySpec};

/// Reusable buffers for [`try_place_with`]; owning one across calls makes
/// the placement hot path allocation-free apart from the returned
/// [`JobAlloc`] itself.
#[derive(Clone, Debug, Default)]
pub struct PlacementScratch {
    /// Baseline candidate list as `(capacity, id)`.
    fit: Vec<(u64, NodeId)>,
    /// Phase-2 compute-node selection as `(free, id)`.
    compute: Vec<(u64, NodeId)>,
    /// Racked phase-2 drain overlay as `(lender, mb already planned)`:
    /// rack-aware lender iteration restarts per entry, so drained
    /// amounts are tracked on the side instead of in a single stream.
    taken: Vec<(NodeId, u64)>,
}

impl PlacementScratch {
    /// Empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The paper's three allocation policies, as a closed config enum.
///
/// Kept as a thin compatibility alias for code that only sweeps the
/// paper's comparison; the open-ended construction API — including the
/// predictive/overcommit/conservative extensions and their parameters
/// — is [`PolicySpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Exclusive node memory, no disaggregation.
    Baseline,
    /// Disaggregated memory, fixed allocation at the requested size.
    Static,
    /// Disaggregated memory, allocation follows actual usage.
    Dynamic,
}

impl PolicyKind {
    /// All three policies, in the paper's presentation order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Baseline,
        PolicyKind::Static,
        PolicyKind::Dynamic,
    ];

    /// Whether the policy uses the disaggregated memory pool.
    pub fn disaggregated(self) -> bool {
        !matches!(self, PolicyKind::Baseline)
    }

    /// Display name as used in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline (no disaggregated memory)",
            PolicyKind::Static => "Static disaggregated memory",
            PolicyKind::Dynamic => "Dynamic disaggregated memory",
        }
    }

    /// Resolve the config/CLI enum into the behavior object the
    /// simulation runs: the matching [`MemoryPolicy`] implementation
    /// from [`crate::sim::hooks`]. This is the only place the enum maps
    /// to behavior — the runner itself never branches on the kind.
    pub fn build(self) -> Box<dyn MemoryPolicy> {
        match self {
            PolicyKind::Baseline => Box::new(Baseline),
            PolicyKind::Static => Box::new(StaticAlloc),
            PolicyKind::Dynamic => Box::new(DynamicAlloc),
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = CoreError;

    /// Parse one of the paper's policy names (`baseline`, `static`,
    /// `dynamic`). The error enumerates the full [`PolicySpec`]
    /// registry, since callers that reach this parser usually meant one
    /// of those specs.
    fn from_str(s: &str) -> Result<Self, CoreError> {
        match s {
            "baseline" => Ok(PolicyKind::Baseline),
            "static" => Ok(PolicyKind::Static),
            "dynamic" => Ok(PolicyKind::Dynamic),
            other => Err(CoreError::invalid_config(format!(
                "unknown policy '{other}' (known policies: {})",
                PolicySpec::known_names()
            ))),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Baseline => "baseline",
            PolicyKind::Static => "static",
            PolicyKind::Dynamic => "dynamic",
        };
        f.write_str(s)
    }
}

/// Try to place a job needing `nodes` nodes with `request_mb` per node
/// under the given policy. Returns the allocation to apply, or `None` if
/// the job cannot start right now.
///
/// Convenience wrapper over [`try_place_with`] with throwaway scratch;
/// hot paths should hold a [`PlacementScratch`] and call that directly.
pub fn try_place(
    cluster: &Cluster,
    kind: PolicyKind,
    nodes: u32,
    request_mb: u64,
) -> Option<JobAlloc> {
    let mut scratch = PlacementScratch::new();
    try_place_with(cluster, kind, nodes, request_mb, &mut scratch)
}

/// Index-backed placement: identical results to [`try_place_reference`],
/// computed from the cluster's persistent free-memory indexes without
/// scanning or sorting the node table. Dispatches on the config enum;
/// the per-policy entry points ([`place_exclusive_with`],
/// [`place_spread_with`]) are what the [`MemoryPolicy`] implementations
/// call directly.
pub fn try_place_with(
    cluster: &Cluster,
    kind: PolicyKind,
    nodes: u32,
    request_mb: u64,
    scratch: &mut PlacementScratch,
) -> Option<JobAlloc> {
    match kind {
        PolicyKind::Baseline => place_exclusive_with(cluster, nodes, request_mb, scratch),
        PolicyKind::Static | PolicyKind::Dynamic => {
            place_spread_with(cluster, nodes, request_mb, scratch)
        }
    }
}

/// Baseline placement off the cluster indexes: only nodes whose full
/// usable DRAM covers the request, and the job gets each node's whole
/// memory (exclusive access, no disaggregation).
pub fn place_exclusive_with(
    cluster: &Cluster,
    nodes: u32,
    request_mb: u64,
    scratch: &mut PlacementScratch,
) -> Option<JobAlloc> {
    let n = nodes as usize;
    if n == 0 {
        return None;
    }
    if cluster.schedulable_count() < n {
        return None;
    }
    // Only nodes whose full usable DRAM covers the request; the job
    // gets the whole node (exclusive access to all resources). An idle
    // baseline node never lends, so its free memory IS its usable
    // capacity — minus any degraded blade slice, which exclusive
    // allocation must not touch. Keyed by free, so this still needs a
    // sort — but only over the schedulable subset, and into a reused
    // buffer.
    scratch.fit.clear();
    scratch.fit.extend(
        cluster
            .schedulable_by_free_asc(0)
            .filter(|&(free, _)| free >= request_mb),
    );
    if scratch.fit.len() < n {
        return None;
    }
    // Best fit: smallest adequate node first, preserving large nodes
    // for large jobs.
    scratch.fit.sort_unstable();
    Some(JobAlloc {
        entries: scratch.fit[..n]
            .iter()
            .map(|&(free, id)| AllocEntry {
                node: id,
                local_mb: free,
                remote: vec![],
            })
            .collect(),
    })
}

/// Static/Dynamic placement off the cluster indexes: fill the request
/// locally where possible, otherwise spread the job over the nodes with
/// the most free memory and borrow the remainder from lender nodes.
pub fn place_spread_with(
    cluster: &Cluster,
    nodes: u32,
    request_mb: u64,
    scratch: &mut PlacementScratch,
) -> Option<JobAlloc> {
    let n = nodes as usize;
    if n == 0 {
        return None;
    }
    if cluster.schedulable_count() < n {
        return None;
    }
    // Phase 1: enough nodes can hold the request entirely locally. The
    // index range walk yields best-fit order (least free first)
    // directly.
    let mut entries = Vec::with_capacity(n);
    entries.extend(
        cluster
            .schedulable_by_free_asc(request_mb)
            .take(n)
            .map(|(_, id)| AllocEntry {
                node: id,
                local_mb: request_mb,
                remote: vec![],
            }),
    );
    if entries.len() == n {
        return Some(JobAlloc { entries });
    }
    entries.clear();
    if !cluster.is_flat() {
        return place_spread_racked(cluster, n, request_mb, scratch);
    }
    // Phase 2: the n nodes with the most free memory become compute
    // nodes; the rest of the free pool lends.
    scratch.compute.clear();
    scratch
        .compute
        .extend(cluster.schedulable_by_free_desc().take(n));
    let compute = &scratch.compute[..];
    // Lenders stream straight off the free index (most free first),
    // skipping the job's own compute nodes; `current` carries the
    // partially drained lender across entries.
    let mut lender_iter = cluster
        .free_by_free_desc()
        .filter(|(_, id)| !compute.iter().any(|&(_, c)| c == *id));
    let mut current: Option<(u64, NodeId)> = None;
    for &(free, id) in compute {
        let local = free.min(request_mb);
        let mut need = request_mb - local;
        let mut remote = Vec::new();
        while need > 0 {
            match current {
                Some((rem, lid)) if rem > 0 => {
                    let take = rem.min(need);
                    remote.push((lid, take));
                    current = Some((rem - take, lid));
                    need -= take;
                }
                _ => {
                    current = Some(lender_iter.next()?); // pool exhausted
                }
            }
        }
        entries.push(AllocEntry {
            node: id,
            local_mb: local,
            remote,
        });
    }
    Some(JobAlloc { entries })
}

/// Phase-2 spread placement on a racked topology. Compute nodes are
/// still the globally most-free schedulable nodes — rack boundaries do
/// not change where a job *runs* — but each entry's borrows walk the
/// locality-aware lender order (own rack first, then cross-rack) and
/// cross-rack borrowing is capped at the topology's per-plan budget.
/// Because the lender order restarts per entry, drained amounts are
/// tracked in the `scratch.taken` overlay rather than a single
/// partially-consumed stream.
fn place_spread_racked(
    cluster: &Cluster,
    n: usize,
    request_mb: u64,
    scratch: &mut PlacementScratch,
) -> Option<JobAlloc> {
    scratch.compute.clear();
    scratch
        .compute
        .extend(cluster.schedulable_by_free_desc().take(n));
    scratch.taken.clear();
    let PlacementScratch { compute, taken, .. } = scratch;
    let compute = &compute[..];
    let mut entries = Vec::with_capacity(n);
    for &(free, id) in compute {
        let local = free.min(request_mb);
        let mut need = request_mb - local;
        let mut cross_budget = cluster.topology().cross_budget(need);
        let mut remote = Vec::new();
        for (lfree, lid) in cluster.lenders_from(id) {
            if need == 0 {
                break;
            }
            if compute.iter().any(|&(_, c)| c == lid) {
                continue;
            }
            let already = taken
                .iter()
                .find(|&&(t, _)| t == lid)
                .map_or(0, |&(_, a)| a);
            let avail = lfree - already;
            let is_cross = cluster.is_cross(id, lid);
            let take = if is_cross {
                avail.min(need).min(cross_budget)
            } else {
                avail.min(need)
            };
            if take == 0 {
                continue;
            }
            remote.push((lid, take));
            need -= take;
            if is_cross {
                cross_budget -= take;
            }
            match taken.iter_mut().find(|&&mut (t, _)| t == lid) {
                Some(slot) => slot.1 += take,
                None => taken.push((lid, take)),
            }
        }
        if need > 0 {
            return None; // pool (or cross-rack budget) exhausted
        }
        entries.push(AllocEntry {
            node: id,
            local_mb: local,
            remote,
        });
    }
    Some(JobAlloc { entries })
}

/// The original full-scan placement: collects and sorts the schedulable
/// and lender sets per call. Retained as the oracle for equivalence
/// tests and as the baseline the benchmarks compare against.
pub fn try_place_reference(
    cluster: &Cluster,
    kind: PolicyKind,
    nodes: u32,
    request_mb: u64,
) -> Option<JobAlloc> {
    match kind {
        PolicyKind::Baseline => place_exclusive_reference(cluster, nodes, request_mb),
        PolicyKind::Static | PolicyKind::Dynamic => {
            place_spread_reference(cluster, nodes, request_mb)
        }
    }
}

/// Schedulable nodes (idle and within the lend cap) as `(free, id)`,
/// collected by a full scan — the reference placements sort this per
/// call.
fn sched_scan(cluster: &Cluster) -> Vec<(u64, NodeId)> {
    cluster
        .iter()
        .filter(|&(id, _)| cluster.schedulable(id))
        .map(|(id, node)| (node.free_mb(), id))
        .collect()
}

/// Full-scan twin of [`place_exclusive_with`].
pub fn place_exclusive_reference(
    cluster: &Cluster,
    nodes: u32,
    request_mb: u64,
) -> Option<JobAlloc> {
    let n = nodes as usize;
    if n == 0 {
        return None;
    }
    let sched = sched_scan(cluster);
    if sched.len() < n {
        return None;
    }
    // Only nodes whose full usable DRAM covers the request; the job
    // gets the whole node (exclusive access to all resources). Free
    // equals usable capacity on an idle baseline node and excludes
    // degraded blade slices.
    let mut fit: Vec<(u64, NodeId)> = sched
        .iter()
        .copied()
        .filter(|&(free, _)| free >= request_mb)
        .collect();
    if fit.len() < n {
        return None;
    }
    // Best fit: smallest adequate node first, preserving large nodes
    // for large jobs.
    fit.sort_unstable();
    Some(JobAlloc {
        entries: fit[..n]
            .iter()
            .map(|&(free, id)| AllocEntry {
                node: id,
                local_mb: free,
                remote: vec![],
            })
            .collect(),
    })
}

/// Full-scan twin of [`place_spread_with`].
pub fn place_spread_reference(cluster: &Cluster, nodes: u32, request_mb: u64) -> Option<JobAlloc> {
    let n = nodes as usize;
    if n == 0 {
        return None;
    }
    let mut sched = sched_scan(cluster);
    if sched.len() < n {
        return None;
    }
    // Phase 1: enough nodes can hold the request entirely locally.
    let mut fit: Vec<(u64, NodeId)> = sched
        .iter()
        .copied()
        .filter(|&(free, _)| free >= request_mb)
        .collect();
    if fit.len() >= n {
        // Best fit: least free first.
        fit.sort_unstable();
        return Some(JobAlloc {
            entries: fit[..n]
                .iter()
                .map(|&(_, id)| AllocEntry {
                    node: id,
                    local_mb: request_mb,
                    remote: vec![],
                })
                .collect(),
        });
    }
    if !cluster.is_flat() {
        return place_spread_racked_reference(cluster, sched, n, request_mb);
    }
    // Phase 2: nodes with the most free memory + borrowing.
    // Sort descending by free, ascending by id for determinism.
    sched.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let compute = &sched[..n];
    let compute_ids: Vec<NodeId> = compute.iter().map(|&(_, id)| id).collect();
    // Lenders: every other node with free memory, most free first.
    let mut lenders: Vec<(u64, NodeId)> = cluster
        .iter()
        .filter(|(id, node)| node.free_mb() > 0 && !compute_ids.contains(id))
        .map(|(id, node)| (node.free_mb(), id))
        .collect();
    lenders.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut li = 0usize;
    let mut entries = Vec::with_capacity(n);
    for &(free, id) in compute {
        let local = free.min(request_mb);
        let mut need = request_mb - local;
        let mut remote = Vec::new();
        while need > 0 {
            let Some(slot) = lenders.get_mut(li) else {
                return None; // pool exhausted
            };
            let take = slot.0.min(need);
            if take > 0 {
                remote.push((slot.1, take));
                slot.0 -= take;
                need -= take;
            }
            if slot.0 == 0 {
                li += 1;
            }
        }
        entries.push(AllocEntry {
            node: id,
            local_mb: local,
            remote,
        });
    }
    Some(JobAlloc { entries })
}

/// Full-scan twin of [`place_spread_racked`], kept as the equivalence
/// oracle: the lender pool is re-sorted per entry by
/// `(cross-rack?, free desc, id asc)` with original free-memory keys,
/// and drained amounts live in a side overlay exactly like the indexed
/// implementation.
fn place_spread_racked_reference(
    cluster: &Cluster,
    mut sched: Vec<(u64, NodeId)>,
    n: usize,
    request_mb: u64,
) -> Option<JobAlloc> {
    sched.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let compute = &sched[..n];
    let compute_ids: Vec<NodeId> = compute.iter().map(|&(_, id)| id).collect();
    let lenders: Vec<(u64, NodeId)> = cluster
        .iter()
        .filter(|(id, node)| node.free_mb() > 0 && !compute_ids.contains(id))
        .map(|(id, node)| (node.free_mb(), id))
        .collect();
    let mut taken: Vec<(NodeId, u64)> = Vec::new();
    let mut entries = Vec::with_capacity(n);
    for &(free, id) in compute {
        let local = free.min(request_mb);
        let mut need = request_mb - local;
        let mut cross_budget = cluster.topology().cross_budget(need);
        // Re-order the pool for *this* entry: own-rack lenders first.
        let mut order = lenders.clone();
        order.sort_unstable_by(|a, b| {
            cluster
                .is_cross(id, a.1)
                .cmp(&cluster.is_cross(id, b.1))
                .then(b.0.cmp(&a.0))
                .then(a.1.cmp(&b.1))
        });
        let mut remote = Vec::new();
        for (lfree, lid) in order {
            if need == 0 {
                break;
            }
            let already = taken
                .iter()
                .find(|&&(t, _)| t == lid)
                .map_or(0, |&(_, a)| a);
            let avail = lfree - already;
            let is_cross = cluster.is_cross(id, lid);
            let take = if is_cross {
                avail.min(need).min(cross_budget)
            } else {
                avail.min(need)
            };
            if take == 0 {
                continue;
            }
            remote.push((lid, take));
            need -= take;
            if is_cross {
                cross_budget -= take;
            }
            match taken.iter_mut().find(|&&mut (t, _)| t == lid) {
                Some(slot) => slot.1 += take,
                None => taken.push((lid, take)),
            }
        }
        if need > 0 {
            return None; // pool (or cross-rack budget) exhausted
        }
        entries.push(AllocEntry {
            node: id,
            local_mb: local,
            remote,
        });
    }
    Some(JobAlloc { entries })
}

/// Plan the growth of one compute-node entry by `need_mb`: local memory
/// first, then borrows from the lenders with the most free memory
/// (paper §2.2: "allocate memory locally, if possible, and then remotely
/// if necessary", maximising the local-to-remote ratio).
///
/// `compute_ids` are all compute nodes of the job (excluded as lenders).
/// Returns `(add_local, borrows)`, or `None` if the cluster cannot
/// satisfy the demand — the out-of-memory case the Actuator resolves by
/// terminating and resubmitting the job.
pub fn plan_growth(
    cluster: &Cluster,
    entry_node: NodeId,
    compute_ids: &[NodeId],
    need_mb: u64,
) -> Option<(u64, Vec<(NodeId, u64)>)> {
    if need_mb == 0 {
        return Some((0, vec![]));
    }
    let local = cluster.node(entry_node).free_mb().min(need_mb);
    let mut need = need_mb - local;
    if need == 0 {
        return Some((local, vec![]));
    }
    if !cluster.is_flat() {
        // Racked: walk the locality-aware order (own rack first) under
        // the cross-rack budget.
        let mut cross_budget = cluster.topology().cross_budget(need);
        let mut borrows = Vec::new();
        for (free, id) in cluster.lenders_from(entry_node) {
            if compute_ids.contains(&id) {
                continue;
            }
            let is_cross = cluster.is_cross(entry_node, id);
            let take = if is_cross {
                free.min(need).min(cross_budget)
            } else {
                free.min(need)
            };
            if take == 0 {
                continue;
            }
            borrows.push((id, take));
            need -= take;
            if is_cross {
                cross_budget -= take;
            }
            if need == 0 {
                break;
            }
        }
        return if need > 0 {
            None
        } else {
            Some((local, borrows))
        };
    }
    // Lenders stream off the free index (most free first) instead of a
    // collect-and-sort pass over every node.
    let mut borrows = Vec::new();
    for (free, id) in cluster.free_by_free_desc() {
        if compute_ids.contains(&id) {
            continue;
        }
        let take = free.min(need);
        borrows.push((id, take));
        need -= take;
        if need == 0 {
            break;
        }
    }
    if need > 0 {
        None
    } else {
        Some((local, borrows))
    }
}

/// Full-scan twin of [`plan_growth`], kept as the equivalence-test
/// oracle.
pub fn plan_growth_reference(
    cluster: &Cluster,
    entry_node: NodeId,
    compute_ids: &[NodeId],
    need_mb: u64,
) -> Option<(u64, Vec<(NodeId, u64)>)> {
    if need_mb == 0 {
        return Some((0, vec![]));
    }
    let local = cluster.node(entry_node).free_mb().min(need_mb);
    let mut need = need_mb - local;
    if need == 0 {
        return Some((local, vec![]));
    }
    let mut lenders: Vec<(u64, NodeId)> = cluster
        .iter()
        .filter(|(id, node)| node.free_mb() > 0 && !compute_ids.contains(id))
        .map(|(id, node)| (node.free_mb(), id))
        .collect();
    if !cluster.is_flat() {
        // Racked twin: sort by (cross-rack?, free desc, id asc) and walk
        // under the cross-rack budget.
        lenders.sort_unstable_by(|a, b| {
            cluster
                .is_cross(entry_node, a.1)
                .cmp(&cluster.is_cross(entry_node, b.1))
                .then(b.0.cmp(&a.0))
                .then(a.1.cmp(&b.1))
        });
        let mut cross_budget = cluster.topology().cross_budget(need);
        let mut borrows = Vec::new();
        for (free, id) in lenders {
            if need == 0 {
                break;
            }
            let is_cross = cluster.is_cross(entry_node, id);
            let take = if is_cross {
                free.min(need).min(cross_budget)
            } else {
                free.min(need)
            };
            if take == 0 {
                continue;
            }
            borrows.push((id, take));
            need -= take;
            if is_cross {
                cross_budget -= take;
            }
        }
        return if need > 0 {
            None
        } else {
            Some((local, borrows))
        };
    }
    lenders.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut borrows = Vec::new();
    for (free, id) in lenders {
        if need == 0 {
            break;
        }
        let take = free.min(need);
        borrows.push((id, take));
        need -= take;
    }
    if need > 0 {
        None
    } else {
        Some((local, borrows))
    }
}

/// Whether a job could ever be placed on an *empty* cluster under the
/// policy — used to flag unschedulable jobs ("missing bars" in Figs. 5
/// and 8: not enough large-memory nodes to run all jobs).
pub fn feasible_on_empty(cluster: &Cluster, kind: PolicyKind, nodes: u32, request_mb: u64) -> bool {
    try_place(cluster, kind, nodes, request_mb).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 large (2000) + 2 normal (1000) nodes, lend cap 50%.
    fn mixed_cluster() -> Cluster {
        Cluster::new(vec![2000, 1000, 2000, 1000], 0.5)
    }

    #[test]
    fn baseline_needs_full_capacity() {
        let c = mixed_cluster();
        // 1500 MB fits only the two 2000-capacity nodes.
        let a = try_place(&c, PolicyKind::Baseline, 2, 1500).unwrap();
        let ids: Vec<u32> = a.entries.iter().map(|e| e.node.0).collect();
        assert_eq!(ids, vec![0, 2]);
        // Full node allocated (exclusive access).
        assert!(a
            .entries
            .iter()
            .all(|e| e.local_mb == 2000 && e.remote.is_empty()));
        // Three such nodes don't exist.
        assert!(try_place(&c, PolicyKind::Baseline, 3, 1500).is_none());
    }

    #[test]
    fn baseline_best_fit_prefers_small_nodes() {
        let c = mixed_cluster();
        let a = try_place(&c, PolicyKind::Baseline, 2, 800).unwrap();
        let ids: Vec<u32> = a.entries.iter().map(|e| e.node.0).collect();
        assert_eq!(ids, vec![1, 3], "small jobs should use normal nodes");
    }

    #[test]
    fn static_local_when_possible() {
        let c = mixed_cluster();
        let a = try_place(&c, PolicyKind::Static, 2, 900).unwrap();
        // Best fit: the 1000-MB nodes take it, fully local.
        let ids: Vec<u32> = a.entries.iter().map(|e| e.node.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert!(a
            .entries
            .iter()
            .all(|e| e.local_mb == 900 && e.remote.is_empty()));
    }

    #[test]
    fn static_borrows_when_needed() {
        let c = mixed_cluster();
        // 1500/node on 3 nodes: two 2000-nodes fit locally; third entry on a
        // 1000-node borrows 500.
        let a = try_place(&c, PolicyKind::Static, 3, 1500).unwrap();
        assert_eq!(a.total_mb(), 4500);
        let borrowed: u64 = a.remote_mb();
        assert_eq!(borrowed, 500);
        // The lender must be the remaining idle node.
        for e in &a.entries {
            for &(lender, _) in &e.remote {
                assert!(!a.entries.iter().any(|x| x.node == lender));
            }
        }
    }

    #[test]
    fn static_fails_when_pool_exhausted() {
        let c = mixed_cluster();
        // 4 nodes × 2500 MB = 10000 > total 6000.
        assert!(try_place(&c, PolicyKind::Static, 4, 2500).is_none());
    }

    #[test]
    fn static_can_exceed_node_capacity_via_borrowing() {
        let c = mixed_cluster();
        // A 1-node job needing 2500 (> any node) borrows 500.
        let a = try_place(&c, PolicyKind::Static, 1, 2500).unwrap();
        assert_eq!(a.entries[0].local_mb, 2000);
        assert_eq!(a.remote_mb(), 500);
        // Baseline cannot run it at all.
        assert!(try_place(&c, PolicyKind::Baseline, 1, 2500).is_none());
    }

    #[test]
    fn placement_respects_busy_nodes() {
        let mut c = mixed_cluster();
        let a = try_place(&c, PolicyKind::Static, 2, 1800).unwrap();
        c.start_job(JobId(1), a, 1.0);
        // The two large nodes are busy; a second large-memory job needs
        // borrowing from... remaining free: nodes 1,3 (1000 each) + 2×200.
        let b = try_place(&c, PolicyKind::Static, 2, 1200);
        let b = b.expect("should borrow to fit");
        assert_eq!(b.total_mb(), 2400);
        assert!(b.remote_mb() > 0);
    }

    #[test]
    fn lend_cap_blocks_scheduling_not_lending() {
        let mut c = Cluster::new(vec![1000; 3], 0.5);
        // Job on node 0 borrows 600 from node 1 → node 1 over the cap.
        let alloc = JobAlloc {
            entries: vec![AllocEntry {
                node: NodeId(0),
                local_mb: 1000,
                remote: vec![(NodeId(1), 600)],
            }],
        };
        c.start_job(JobId(1), alloc, 1.0);
        // Node 1 (memory node) must not be selected as compute.
        let a = try_place(&c, PolicyKind::Static, 1, 500).unwrap();
        assert_eq!(a.entries[0].node, NodeId(2));
        // Only node 2 is schedulable; a 2-node job must fail.
        assert!(try_place(&c, PolicyKind::Static, 2, 100).is_none());
        // But node 1 can still lend its remaining 400.
        let b = try_place(&c, PolicyKind::Static, 1, 1400).unwrap();
        assert!(b.remote_mb() >= 400);
    }

    #[test]
    fn plan_growth_local_first() {
        let mut c = Cluster::new(vec![1000; 3], 0.5);
        c.start_job(
            JobId(1),
            JobAlloc {
                entries: vec![AllocEntry {
                    node: NodeId(0),
                    local_mb: 400,
                    remote: vec![],
                }],
            },
            1.0,
        );
        // Need 800 more: 600 local remain, 200 borrowed.
        let (local, borrows) = plan_growth(&c, NodeId(0), &[NodeId(0)], 800).unwrap();
        assert_eq!(local, 600);
        assert_eq!(borrows.iter().map(|&(_, m)| m).sum::<u64>(), 200);
        assert!(borrows.iter().all(|&(l, _)| l != NodeId(0)));
    }

    #[test]
    fn plan_growth_zero_need() {
        let c = Cluster::new(vec![1000; 2], 0.5);
        assert_eq!(
            plan_growth(&c, NodeId(0), &[NodeId(0)], 0),
            Some((0, vec![]))
        );
    }

    #[test]
    fn plan_growth_fails_on_exhaustion() {
        let mut c = Cluster::new(vec![1000; 2], 0.5);
        c.start_job(
            JobId(1),
            JobAlloc {
                entries: vec![AllocEntry {
                    node: NodeId(0),
                    local_mb: 1000,
                    remote: vec![(NodeId(1), 900)],
                }],
            },
            1.0,
        );
        // Only 100 MB free in the whole system.
        assert!(plan_growth(&c, NodeId(0), &[NodeId(0)], 200).is_none());
        assert!(plan_growth(&c, NodeId(0), &[NodeId(0)], 100).is_some());
    }

    #[test]
    fn feasibility_matches_empty_cluster_placement() {
        let c = mixed_cluster();
        assert!(feasible_on_empty(&c, PolicyKind::Baseline, 2, 2000));
        assert!(!feasible_on_empty(&c, PolicyKind::Baseline, 2, 2001));
        assert!(feasible_on_empty(&c, PolicyKind::Static, 2, 2001));
        assert!(!feasible_on_empty(&c, PolicyKind::Static, 5, 100));
    }

    #[test]
    fn policy_labels() {
        assert!(PolicyKind::Baseline.label().contains("Baseline"));
        assert!(!PolicyKind::Baseline.disaggregated());
        assert!(PolicyKind::Dynamic.disaggregated());
        assert_eq!(PolicyKind::Dynamic.to_string(), "dynamic");
        assert_eq!(PolicyKind::ALL.len(), 3);
    }

    use crate::job::JobId;
}
