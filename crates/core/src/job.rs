//! Job model: what a user submits plus the offline memory-usage trace the
//! simulator replays (paper §2.3 — the Decider receives memory usage from
//! the offline trace rather than from live nodes).

use crate::error::CoreError;
use dmhpc_model::ProfileId;
use serde::{Deserialize, Serialize};

/// Unique job identifier within a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Per-node memory consumption of a job over its lifetime, as a piecewise
/// constant function of *progress* (the fraction of the job's total work
/// completed, in `[0, 1]`).
///
/// Keying on progress rather than wallclock makes the trace invariant to
/// slowdown: if contention stretches the job's execution, its memory
/// phases stretch with it, which is exactly how the simulator applies
/// usage updates (paper §2.3: "To calculate the expected simulation time
/// it uses the job's progress").
///
/// Points are `(progress, mem_mb)`; the value at progress `p` is the
/// `mem_mb` of the last point with `progress <= p`. The first point is
/// always at progress 0.
///
/// ```
/// use dmhpc_core::job::MemoryUsageTrace;
///
/// let t = MemoryUsageTrace::new(vec![(0.0, 512), (0.5, 4096)]).unwrap();
/// assert_eq!(t.usage_at(0.25), 512);
/// assert_eq!(t.usage_at(0.75), 4096);
/// assert_eq!(t.peak(), 4096);
/// // The Decider provisions the max over the coming window:
/// assert_eq!(t.max_in(0.4, 0.6), 4096);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryUsageTrace {
    points: Vec<(f64, u64)>,
}

impl MemoryUsageTrace {
    /// Build a trace from `(progress, mem_mb)` points.
    ///
    /// # Errors
    /// Returns an error if points are empty, unsorted, out of `[0,1]`, or
    /// do not start at progress 0.
    pub fn new(points: Vec<(f64, u64)>) -> Result<Self, CoreError> {
        if points.is_empty() {
            return Err(CoreError::invalid_trace(
                "usage trace needs at least one point",
            ));
        }
        if points[0].0 != 0.0 {
            return Err(CoreError::invalid_trace(format!(
                "usage trace must start at progress 0, starts at {}",
                points[0].0
            )));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(CoreError::invalid_trace(format!(
                    "usage trace progress must be strictly increasing: {} then {}",
                    w[0].0, w[1].0
                )));
            }
        }
        if let Some(&(p, _)) = points.iter().find(|&&(p, _)| !(0.0..=1.0).contains(&p)) {
            return Err(CoreError::invalid_trace(format!(
                "usage trace progress {p} outside [0,1]"
            )));
        }
        Ok(Self { points })
    }

    /// A flat trace: constant memory use over the whole job.
    pub fn flat(mem_mb: u64) -> Self {
        Self {
            points: vec![(0.0, mem_mb)],
        }
    }

    /// Memory in use at the given progress (clamped to `[0,1]`).
    pub fn usage_at(&self, progress: f64) -> u64 {
        let p = progress.clamp(0.0, 1.0);
        // Last point with progress <= p. partition_point gives the first
        // index with point.0 > p; the answer is the one before it.
        let idx = self.points.partition_point(|&(q, _)| q <= p);
        self.points[idx.saturating_sub(1)].1
    }

    /// Maximum memory used over the progress interval `[from, to]`
    /// (clamped). This is the demand the Decider enforces for the period
    /// between two usage updates (paper §2.3: "the maximum memory usage in
    /// the time period between the current progress and the next update").
    pub fn max_in(&self, from: f64, to: f64) -> u64 {
        let (from, to) = (from.clamp(0.0, 1.0), to.clamp(0.0, 1.0));
        let (from, to) = if from <= to { (from, to) } else { (to, from) };
        let mut max = self.usage_at(from);
        for &(p, m) in &self.points {
            if p > from && p <= to {
                max = max.max(m);
            }
        }
        max
    }

    /// [`Self::usage_at`] with a resumable cursor: `cursor` is the index
    /// of the segment active at the previous query, and the scan resumes
    /// there instead of binary-searching the whole trace. Per-job
    /// progress only moves forward between restarts, so across a job's
    /// life the cursor walks each trace point once — O(1) amortized
    /// per call. A backwards query (job restarted with checkpoint
    /// credit) rewinds the cursor linearly; result is identical to
    /// [`Self::usage_at`] either way.
    pub fn usage_at_from(&self, progress: f64, cursor: &mut usize) -> u64 {
        let p = progress.clamp(0.0, 1.0);
        let mut i = (*cursor).min(self.points.len() - 1);
        // Rewind if the caller moved backwards (restart rewound progress).
        while i > 0 && self.points[i].0 > p {
            i -= 1;
        }
        // Advance to the last point with progress <= p.
        while i + 1 < self.points.len() && self.points[i + 1].0 <= p {
            i += 1;
        }
        *cursor = i;
        self.points[i].1
    }

    /// [`Self::max_in`] with a resumable cursor (see
    /// [`Self::usage_at_from`]): the cursor advances to `from`, and the
    /// window scan reads only the points inside `(from, to]`, which sit
    /// immediately after it — no full-trace rescan per Monitor sample.
    pub fn max_in_from(&self, from: f64, to: f64, cursor: &mut usize) -> u64 {
        let (from, to) = (from.clamp(0.0, 1.0), to.clamp(0.0, 1.0));
        let (from, to) = if from <= to { (from, to) } else { (to, from) };
        let mut max = self.usage_at_from(from, cursor);
        // The cursor is the last point at or before `from`; every later
        // point has progress > from, so scan forward while <= to.
        let mut i = *cursor + 1;
        while i < self.points.len() && self.points[i].0 <= to {
            max = max.max(self.points[i].1);
            i += 1;
        }
        max
    }

    /// Peak memory over the whole job.
    pub fn peak(&self) -> u64 {
        self.points.iter().map(|&(_, m)| m).max().unwrap_or(0)
    }

    /// Time-average memory use, weighting each segment by its progress
    /// span (equals the wallclock average when the job runs at constant
    /// speed).
    pub fn average(&self) -> f64 {
        let mut acc = 0.0;
        for (i, &(p, m)) in self.points.iter().enumerate() {
            let next = self.points.get(i + 1).map(|&(q, _)| q).unwrap_or(1.0);
            acc += (next - p) * m as f64;
        }
        acc
    }

    /// The underlying `(progress, mem_mb)` points.
    pub fn points(&self) -> &[(f64, u64)] {
        &self.points
    }

    /// Number of points in the trace.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: a constructed trace has at least one point.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A job as the resource manager sees it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Job {
    /// Identifier, unique within the workload.
    pub id: JobId,
    /// Submission time in seconds from the start of the trace.
    pub submit_s: f64,
    /// Number of (exclusive) nodes requested.
    pub nodes: u32,
    /// Base runtime in seconds at full performance (no remote slowdown).
    pub base_runtime_s: f64,
    /// The user's wallclock limit in seconds (≥ runtime; used by
    /// backfill to estimate when resources free up).
    pub time_limit_s: f64,
    /// Memory requested per node in MB — what the user wrote in the
    /// submission script, i.e. peak × (1 + overestimation).
    pub mem_request_mb: u64,
    /// True per-node memory consumption over progress.
    pub usage: MemoryUsageTrace,
    /// Profile used by the slowdown model (not visible to the policy).
    pub profile: ProfileId,
}

impl Job {
    /// Peak per-node memory consumption in MB.
    pub fn peak_mb(&self) -> u64 {
        self.usage.peak()
    }

    /// Node-hours of the job at its base runtime.
    pub fn node_hours(&self) -> f64 {
        self.nodes as f64 * self.base_runtime_s / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> MemoryUsageTrace {
        MemoryUsageTrace::new(vec![(0.0, 100), (0.25, 400), (0.5, 200), (0.9, 800)]).unwrap()
    }

    #[test]
    fn rejects_empty_and_unsorted() {
        assert!(MemoryUsageTrace::new(vec![]).is_err());
        assert!(MemoryUsageTrace::new(vec![(0.0, 1), (0.5, 2), (0.5, 3)]).is_err());
        assert!(MemoryUsageTrace::new(vec![(0.1, 1)]).is_err());
        assert!(MemoryUsageTrace::new(vec![(0.0, 1), (1.5, 2)]).is_err());
    }

    #[test]
    fn usage_at_steps() {
        let t = trace();
        assert_eq!(t.usage_at(0.0), 100);
        assert_eq!(t.usage_at(0.1), 100);
        assert_eq!(t.usage_at(0.25), 400);
        assert_eq!(t.usage_at(0.3), 400);
        assert_eq!(t.usage_at(0.5), 200);
        assert_eq!(t.usage_at(0.95), 800);
        assert_eq!(t.usage_at(1.0), 800);
    }

    #[test]
    fn usage_clamps_out_of_range() {
        let t = trace();
        assert_eq!(t.usage_at(-1.0), 100);
        assert_eq!(t.usage_at(2.0), 800);
    }

    #[test]
    fn max_in_window() {
        let t = trace();
        assert_eq!(t.max_in(0.0, 0.2), 100);
        assert_eq!(t.max_in(0.0, 0.25), 400);
        assert_eq!(t.max_in(0.3, 0.6), 400); // value at 0.3 is 400
        assert_eq!(t.max_in(0.55, 0.8), 200);
        assert_eq!(t.max_in(0.0, 1.0), 800);
    }

    #[test]
    fn max_in_swapped_bounds() {
        let t = trace();
        assert_eq!(t.max_in(1.0, 0.0), 800);
    }

    #[test]
    fn cursor_twins_match_full_scans_on_monotone_and_rewound_queries() {
        let t = trace();
        // Forward walk: the cursor variants must agree with the
        // full-scan originals at every step.
        let mut cur = 0usize;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            assert_eq!(t.usage_at_from(p, &mut cur), t.usage_at(p), "p={p}");
        }
        // Rewind (job restart): the cursor walks back and still agrees.
        assert_eq!(t.usage_at_from(0.1, &mut cur), t.usage_at(0.1));
        assert_eq!(cur, 0);
        // Windowed max over a forward walk, including swapped bounds.
        let mut cur = 0usize;
        for i in 0..=50 {
            let from = i as f64 / 50.0 * 0.9;
            let to = from + 0.15;
            assert_eq!(t.max_in_from(from, to, &mut cur), t.max_in(from, to));
        }
        let mut cur = 3usize;
        assert_eq!(t.max_in_from(1.0, 0.0, &mut cur), t.max_in(1.0, 0.0));
    }

    #[test]
    fn cursor_twins_randomized_equivalence() {
        // Deterministic LCG over random traces and monotone query
        // sequences with occasional rewinds — the `first_exceed_at`
        // style equivalence sweep for the cursor twins.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        for _ in 0..200 {
            let n = 1 + (next() % 9) as usize;
            let mut pts = vec![(0.0, 64 + next() % 4096)];
            let mut p = 0.0;
            for _ in 1..n {
                p += 0.01 + (next() % 100) as f64 / 500.0;
                if p > 1.0 {
                    break;
                }
                pts.push((p, 64 + next() % 4096));
            }
            let t = MemoryUsageTrace::new(pts).unwrap();
            let mut cur = 0usize;
            let mut q = 0.0f64;
            for _ in 0..40 {
                if next() % 8 == 0 {
                    q = (q - 0.3).max(0.0); // restart-style rewind
                } else {
                    q = (q + (next() % 100) as f64 / 1000.0).min(1.0);
                }
                let horizon = q + (next() % 200) as f64 / 1000.0;
                assert_eq!(t.usage_at_from(q, &mut cur), t.usage_at(q));
                assert_eq!(t.max_in_from(q, horizon, &mut cur), t.max_in(q, horizon));
            }
        }
    }

    #[test]
    fn peak_and_average() {
        let t = trace();
        assert_eq!(t.peak(), 800);
        // Segments: [0,0.25)x100 + [0.25,0.5)x400 + [0.5,0.9)x200 + [0.9,1]x800
        let expect = 0.25 * 100.0 + 0.25 * 400.0 + 0.4 * 200.0 + 0.1 * 800.0;
        assert!((t.average() - expect).abs() < 1e-9);
    }

    #[test]
    fn flat_trace() {
        let t = MemoryUsageTrace::flat(512);
        assert_eq!(t.peak(), 512);
        assert_eq!(t.usage_at(0.5), 512);
        assert!((t.average() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn job_node_hours() {
        let j = Job {
            id: JobId(1),
            submit_s: 0.0,
            nodes: 4,
            base_runtime_s: 1800.0,
            time_limit_s: 3600.0,
            mem_request_mb: 1000,
            usage: MemoryUsageTrace::flat(800),
            profile: ProfileId(0),
        };
        assert!((j.node_hours() - 2.0).abs() < 1e-12);
        assert_eq!(j.peak_mb(), 800);
    }
}
