//! The dynamic memory-allocation scheme of Figure 1a: Monitor, Decider,
//! Actuator, Executor.
//!
//! * The **Monitor** runs on every node (Slurmd) and samples the job's
//!   actual memory consumption; in the simulator it reads the offline
//!   usage trace instead (Fig. 1b). [`Monitor`] computes the sampling
//!   horizon and the demand for the next period: the paper takes *the
//!   maximum memory usage between the current progress and the next
//!   update*.
//! * The **Decider** (in Slurmctld) compares the reported usage against
//!   the current allocation — [`decide`] is that comparison as a pure
//!   function.
//! * The **Actuator** applies the decision: deallocate remote-first,
//!   allocate local-first ([`crate::cluster::Cluster::shrink_job`] /
//!   [`crate::policy::plan_growth`] + [`crate::cluster::Cluster::grow_entry`]),
//!   terminating and resubmitting the job when the cluster cannot
//!   satisfy the demand.
//! * The **Executor** (back on the node) enforces the new limits; in the
//!   simulation this reduces to updating the job's duration via the
//!   slowdown model, which the engine does by re-keying the end event.
//!
//! Keeping Monitor/Decider pure makes the §2.2 semantics independently
//! testable; the simulation driver in [`crate::sim`] wires them to the
//! cluster ledger.

use crate::cluster::NodeId;
use crate::error::CoreError;
use crate::job::MemoryUsageTrace;

/// The Monitor's sampling parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Monitor {
    /// Nominal update interval in seconds (300 s in the paper — "we
    /// update the memory usage on average every 5 minutes").
    pub interval_s: f64,
}

impl Monitor {
    /// Create a monitor with the given nominal interval. Errors unless
    /// the interval is strictly positive and finite.
    pub fn new(interval_s: f64) -> Result<Self, CoreError> {
        if !(interval_s > 0.0 && interval_s.is_finite()) {
            return Err(CoreError::invalid_config(format!(
                "update interval must be positive, got {interval_s}"
            )));
        }
        Ok(Self { interval_s })
    }

    /// The progress the job will reach by the next nominal update, given
    /// its current progress, speed (fraction of base work per wallclock
    /// second × base runtime) and base runtime.
    pub fn horizon(&self, progress: f64, speed: f64, base_runtime_s: f64) -> f64 {
        debug_assert!(base_runtime_s > 0.0);
        progress + speed * self.interval_s / base_runtime_s
    }

    /// The demand the Decider must provision for the coming period: the
    /// maximum usage over `[progress, horizon]` in the offline trace
    /// (§2.3: "the maximum memory usage in the time period between the
    /// current progress and the next update").
    pub fn sample_demand(
        &self,
        usage: &MemoryUsageTrace,
        progress: f64,
        speed: f64,
        base_runtime_s: f64,
    ) -> u64 {
        usage.max_in(progress, self.horizon(progress, speed, base_runtime_s))
    }

    /// [`Self::sample_demand`] resuming from a per-job trace cursor
    /// ([`MemoryUsageTrace::max_in_from`]): progress only moves forward
    /// between restarts, so the sample is O(1) amortized instead of a
    /// full-trace scan per update. Returns the same value as
    /// [`Self::sample_demand`] for any cursor state.
    pub fn sample_demand_at(
        &self,
        usage: &MemoryUsageTrace,
        progress: f64,
        speed: f64,
        base_runtime_s: f64,
        cursor: &mut usize,
    ) -> u64 {
        usage.max_in_from(
            progress,
            self.horizon(progress, speed, base_runtime_s),
            cursor,
        )
    }
}

/// What the Actuator must do to one job after a usage update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Entries currently above the demand shrink to this target
    /// (remote-released-first); `None` when nothing is above it.
    pub shrink_to_mb: Option<u64>,
    /// Entries below the demand and the amount each must grow
    /// (local-first, then remote).
    pub grows: Vec<(NodeId, u64)>,
}

impl Decision {
    /// Whether the decision changes anything.
    pub fn is_hold(&self) -> bool {
        self.shrink_to_mb.is_none() && self.grows.is_empty()
    }
}

/// The Decider: compare per-node allocations against the sampled demand
/// (identical across the job's nodes — usage traces are per node).
///
/// If an entry's allocation exceeds the demand the resource manager
/// deallocates down to it; if the allocation is below, it allocates up
/// to it (§2.2).
pub fn decide(entries: &[(NodeId, u64)], demand_mb: u64) -> Decision {
    let mut shrink = false;
    let mut grows = Vec::new();
    for &(node, alloc_mb) in entries {
        if alloc_mb > demand_mb {
            shrink = true;
        } else if alloc_mb < demand_mb {
            grows.push((node, demand_mb - alloc_mb));
        }
    }
    Decision {
        shrink_to_mb: shrink.then_some(demand_mb),
        grows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn monitor_rejects_bad_interval() {
        assert!(Monitor::new(0.0).is_err());
        assert!(Monitor::new(-5.0).is_err());
        assert!(Monitor::new(f64::NAN).is_err());
        assert!(Monitor::new(f64::INFINITY).is_err());
    }

    #[test]
    fn horizon_scales_with_speed() {
        let m = Monitor::new(300.0).unwrap();
        // Full speed on a 3000 s job: 300 s = 10% progress.
        assert!((m.horizon(0.2, 1.0, 3000.0) - 0.3).abs() < 1e-12);
        // Half speed: 5%.
        assert!((m.horizon(0.2, 0.5, 3000.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sample_demand_is_window_max() {
        let m = Monitor::new(300.0).unwrap();
        let usage = MemoryUsageTrace::new(vec![(0.0, 100), (0.25, 800), (0.5, 200)]).unwrap();
        // Window [0.2, 0.3] crosses the 800 MB phase.
        let d = m.sample_demand(&usage, 0.2, 1.0, 3000.0);
        assert_eq!(d, 800);
        // Window [0.6, 0.7] sits inside the 200 MB tail.
        let d = m.sample_demand(&usage, 0.6, 1.0, 3000.0);
        assert_eq!(d, 200);
    }

    #[test]
    fn sample_demand_at_matches_sample_demand() {
        let m = Monitor::new(300.0).unwrap();
        let usage =
            MemoryUsageTrace::new(vec![(0.0, 100), (0.25, 800), (0.5, 200), (0.8, 600)]).unwrap();
        let mut cur = 0usize;
        for i in 0..=40 {
            let p = i as f64 / 40.0;
            assert_eq!(
                m.sample_demand_at(&usage, p, 0.9, 3000.0, &mut cur),
                m.sample_demand(&usage, p, 0.9, 3000.0),
                "p={p}"
            );
        }
    }

    #[test]
    fn decide_hold_when_matching() {
        let d = decide(&[(n(0), 500), (n(1), 500)], 500);
        assert!(d.is_hold());
    }

    #[test]
    fn decide_shrinks_above_demand() {
        let d = decide(&[(n(0), 800), (n(1), 900)], 500);
        assert_eq!(d.shrink_to_mb, Some(500));
        assert!(d.grows.is_empty());
    }

    #[test]
    fn decide_grows_below_demand() {
        let d = decide(&[(n(0), 200), (n(1), 450)], 500);
        assert_eq!(d.shrink_to_mb, None);
        assert_eq!(d.grows, vec![(n(0), 300), (n(1), 50)]);
    }

    #[test]
    fn decide_mixed_entries() {
        // One node above, one below (possible after an OOM-interrupted
        // growth or when entries started asymmetric).
        let d = decide(&[(n(0), 800), (n(1), 300)], 500);
        assert_eq!(d.shrink_to_mb, Some(500));
        assert_eq!(d.grows, vec![(n(1), 200)]);
        assert!(!d.is_hold());
    }
}
