//! Structured per-run event tracing.
//!
//! Every interesting transition in a run — job lifecycle, dynamic-memory
//! actions, scheduler passes, injected faults — can be emitted as a
//! [`TraceEvent`] through a [`TraceSink`]. The default sink is
//! [`NullSink`], whose `enabled()` check the runner caches in a single
//! bool so the allocation-free scheduling hot path pays one predictable
//! branch and nothing else. Tracing is strictly observational: sinks
//! receive `&TraceEvent` and cannot influence the simulation, so any
//! run's outcome is bit-identical with or without a sink attached.
//!
//! Sinks provided here:
//!
//! * [`NullSink`] — zero-cost default (`enabled() == false`).
//! * [`RingSink`] — bounded in-memory buffer of the last N events, for
//!   post-mortems on OOM storms or seed divergence.
//! * [`JsonlSink`] — streams one JSON object per line to any writer.
//! * [`CountingSink`] — folds the stream into a [`RunMetrics`] summary
//!   (per-subsystem counts, Actuator retry histogram, queue-depth and
//!   pool-utilisation time series).
//! * [`FanoutSink`] — duplicates events to several sinks.
//!
//! The JSONL format is hand-rolled (the vendored `serde` is a marker
//! stub): flat objects with a fixed key order per kind, so equal runs
//! produce byte-identical streams. [`parse_jsonl`] and
//! [`validate_stream`] read the format back for filtering, diffing and
//! CI validation.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::cluster::NodeId;
use crate::engine::SimTime;
use crate::job::JobId;

/// One structured event: what happened ([`TraceKind`]) and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time at which the event fired.
    pub t: SimTime,
    /// The event payload.
    pub kind: TraceKind,
}

/// Why a running job was killed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillReason {
    /// Dynamic policy ran out of growable memory (§2.2 OOM).
    Oom,
    /// An injected fault (crash evacuation, irrecoverable degradation,
    /// Actuator escalation) took the job down.
    Fault,
    /// Static/baseline rule: usage exceeded the request (terminal).
    ExceededRequest,
}

impl KillReason {
    /// Stable lower-case name used in the JSONL stream.
    pub fn as_str(self) -> &'static str {
        match self {
            KillReason::Oom => "oom",
            KillReason::Fault => "fault",
            KillReason::ExceededRequest => "exceeded_request",
        }
    }
}

/// Which subsystem an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Subsystem {
    /// Job lifecycle (submit/start/finish/kill/requeue).
    Job,
    /// Dynamic-memory loop (decide/grow/shrink/monitor/actuator).
    Mem,
    /// Scheduler passes.
    Sched,
    /// Injected faults (crash/repair/degrade/restore).
    Fault,
}

impl Subsystem {
    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Job => "job",
            Subsystem::Mem => "mem",
            Subsystem::Sched => "sched",
            Subsystem::Fault => "fault",
        }
    }
}

/// The event taxonomy. Every variant is plain-old-data (`Copy`), so
/// constructing one on the emit path costs a handful of register moves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// A job entered the pending queue (first submission or resubmission
    /// after a kill).
    JobSubmit {
        /// The submitted job.
        job: JobId,
    },
    /// A job started running.
    JobStart {
        /// The started job.
        job: JobId,
        /// Compute nodes the job spans.
        nodes: u32,
        /// Total allocated memory, MB.
        mem_mb: u64,
        /// Portion of `mem_mb` borrowed from remote lenders, MB.
        remote_mb: u64,
    },
    /// A job completed successfully.
    JobFinish {
        /// The finished job.
        job: JobId,
        /// Restarts the job went through before completing.
        restarts: u32,
    },
    /// A running job was killed. A [`TraceKind::JobRequeue`] follows at
    /// the same instant unless the kill was terminal (exceeded-request,
    /// or the restart cap was hit).
    JobKill {
        /// The killed job.
        job: JobId,
        /// Why it was killed.
        reason: KillReason,
        /// Restart count after this kill.
        restarts: u32,
    },
    /// A killed job was resubmitted.
    JobRequeue {
        /// The resubmitted job.
        job: JobId,
        /// Whether the job now jumps to the queue head (§2.2 fairness).
        boosted: bool,
        /// Whether the job was demoted to a pinned static allocation.
        static_mode: bool,
    },
    /// The Decider compared demand against the allocation.
    MemDecide {
        /// The managed job.
        job: JobId,
        /// Monitor-sampled demand for the coming period, MB.
        demand_mb: u64,
        /// Total growth the decision requests across nodes, MB (0 on
        /// hold/shrink).
        grow_mb: u64,
        /// Per-node shrink target, MB (0 when the decision does not
        /// shrink; real targets are always positive).
        shrink_to_mb: u64,
    },
    /// The Executor grew one allocation entry.
    MemGrow {
        /// The growing job.
        job: JobId,
        /// The entry (compute node) that grew.
        node: NodeId,
        /// MB satisfied from the node's local free memory.
        local_mb: u64,
        /// MB borrowed from remote lenders.
        borrowed_mb: u64,
    },
    /// The Executor shrank an allocation (remote slices first).
    MemShrink {
        /// The shrinking job.
        job: JobId,
        /// MB returned to the pool.
        released_mb: u64,
    },
    /// An injected Monitor sample loss: the Decider saw nothing this
    /// period.
    MonitorLoss {
        /// The affected job.
        job: JobId,
    },
    /// An injected Actuator failure: the resize will be retried after a
    /// deterministic exponential backoff.
    ActuatorRetry {
        /// The affected job.
        job: JobId,
        /// Consecutive failed attempts so far (1 = first retry).
        attempt: u32,
        /// Backoff before the retry, seconds.
        backoff_s: f64,
    },
    /// The Actuator retry budget was exhausted; the job is killed and
    /// resubmitted down the §2.2 fairness ladder.
    ActuatorEscalate {
        /// The affected job.
        job: JobId,
        /// Failed attempts that exhausted the budget.
        attempts: u32,
    },
    /// A scheduling pass began with a non-empty queue window.
    SchedPassStart {
        /// Pending-queue depth at pass start.
        queued: u32,
        /// Memory currently allocated across the cluster, MB.
        alloc_mb: u64,
        /// Total cluster memory capacity, MB.
        cap_mb: u64,
    },
    /// The scheduling pass finished.
    SchedPassEnd {
        /// Jobs examined in the queue window.
        considered: u32,
        /// Jobs started by this pass.
        started: u32,
        /// Backfill candidates examined behind a blocked head.
        backfill_depth: u32,
    },
    /// An injected node crash took a node out of the pool.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node's repair completed.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// Pool-blade degradation removed capacity from a node.
    PoolDegrade {
        /// The degraded node.
        node: NodeId,
        /// Capacity that left the pool, MB.
        mb: u64,
    },
    /// Previously degraded capacity returned to the pool.
    PoolRestore {
        /// The restored node.
        node: NodeId,
        /// Capacity that returned, MB (clamped to the outstanding
        /// degradation).
        mb: u64,
    },
}

impl TraceKind {
    /// Every kind name, in taxonomy order. [`validate_stream`] rejects
    /// lines whose `kind` is not in this list.
    pub const NAMES: &'static [&'static str] = &[
        "job_submit",
        "job_start",
        "job_finish",
        "job_kill",
        "job_requeue",
        "mem_decide",
        "mem_grow",
        "mem_shrink",
        "monitor_loss",
        "actuator_retry",
        "actuator_escalate",
        "sched_pass_start",
        "sched_pass_end",
        "node_crash",
        "node_repair",
        "pool_degrade",
        "pool_restore",
    ];

    /// Stable snake-case name used as the JSONL `kind` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::JobSubmit { .. } => "job_submit",
            TraceKind::JobStart { .. } => "job_start",
            TraceKind::JobFinish { .. } => "job_finish",
            TraceKind::JobKill { .. } => "job_kill",
            TraceKind::JobRequeue { .. } => "job_requeue",
            TraceKind::MemDecide { .. } => "mem_decide",
            TraceKind::MemGrow { .. } => "mem_grow",
            TraceKind::MemShrink { .. } => "mem_shrink",
            TraceKind::MonitorLoss { .. } => "monitor_loss",
            TraceKind::ActuatorRetry { .. } => "actuator_retry",
            TraceKind::ActuatorEscalate { .. } => "actuator_escalate",
            TraceKind::SchedPassStart { .. } => "sched_pass_start",
            TraceKind::SchedPassEnd { .. } => "sched_pass_end",
            TraceKind::NodeCrash { .. } => "node_crash",
            TraceKind::NodeRepair { .. } => "node_repair",
            TraceKind::PoolDegrade { .. } => "pool_degrade",
            TraceKind::PoolRestore { .. } => "pool_restore",
        }
    }

    /// The subsystem this kind belongs to.
    pub fn subsystem(&self) -> Subsystem {
        match self {
            TraceKind::JobSubmit { .. }
            | TraceKind::JobStart { .. }
            | TraceKind::JobFinish { .. }
            | TraceKind::JobKill { .. }
            | TraceKind::JobRequeue { .. } => Subsystem::Job,
            TraceKind::MemDecide { .. }
            | TraceKind::MemGrow { .. }
            | TraceKind::MemShrink { .. }
            | TraceKind::MonitorLoss { .. }
            | TraceKind::ActuatorRetry { .. }
            | TraceKind::ActuatorEscalate { .. } => Subsystem::Mem,
            TraceKind::SchedPassStart { .. } | TraceKind::SchedPassEnd { .. } => Subsystem::Sched,
            TraceKind::NodeCrash { .. }
            | TraceKind::NodeRepair { .. }
            | TraceKind::PoolDegrade { .. }
            | TraceKind::PoolRestore { .. } => Subsystem::Fault,
        }
    }
}

impl TraceEvent {
    /// Render the event as one JSONL line (no trailing newline). Key
    /// order is fixed per kind, so identical runs produce byte-identical
    /// streams.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{:.6},\"kind\":\"{}\"",
            self.t.as_secs(),
            self.kind.name()
        );
        match self.kind {
            TraceKind::JobSubmit { job } | TraceKind::MonitorLoss { job } => {
                let _ = write!(s, ",\"job\":{}", job.0);
            }
            TraceKind::JobStart {
                job,
                nodes,
                mem_mb,
                remote_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"nodes\":{nodes},\"mem_mb\":{mem_mb},\"remote_mb\":{remote_mb}",
                    job.0
                );
            }
            TraceKind::JobFinish { job, restarts } => {
                let _ = write!(s, ",\"job\":{},\"restarts\":{restarts}", job.0);
            }
            TraceKind::JobKill {
                job,
                reason,
                restarts,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"reason\":\"{}\",\"restarts\":{restarts}",
                    job.0,
                    reason.as_str()
                );
            }
            TraceKind::JobRequeue {
                job,
                boosted,
                static_mode,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"boosted\":{boosted},\"static_mode\":{static_mode}",
                    job.0
                );
            }
            TraceKind::MemDecide {
                job,
                demand_mb,
                grow_mb,
                shrink_to_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"demand_mb\":{demand_mb},\"grow_mb\":{grow_mb},\"shrink_to_mb\":{shrink_to_mb}",
                    job.0
                );
            }
            TraceKind::MemGrow {
                job,
                node,
                local_mb,
                borrowed_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"node\":{},\"local_mb\":{local_mb},\"borrowed_mb\":{borrowed_mb}",
                    job.0, node.0
                );
            }
            TraceKind::MemShrink { job, released_mb } => {
                let _ = write!(s, ",\"job\":{},\"released_mb\":{released_mb}", job.0);
            }
            TraceKind::ActuatorRetry {
                job,
                attempt,
                backoff_s,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"attempt\":{attempt},\"backoff_s\":{backoff_s:.3}",
                    job.0
                );
            }
            TraceKind::ActuatorEscalate { job, attempts } => {
                let _ = write!(s, ",\"job\":{},\"attempts\":{attempts}", job.0);
            }
            TraceKind::SchedPassStart {
                queued,
                alloc_mb,
                cap_mb,
            } => {
                let _ = write!(
                    s,
                    ",\"queued\":{queued},\"alloc_mb\":{alloc_mb},\"cap_mb\":{cap_mb}"
                );
            }
            TraceKind::SchedPassEnd {
                considered,
                started,
                backfill_depth,
            } => {
                let _ = write!(
                    s,
                    ",\"considered\":{considered},\"started\":{started},\"backfill_depth\":{backfill_depth}"
                );
            }
            TraceKind::NodeCrash { node } | TraceKind::NodeRepair { node } => {
                let _ = write!(s, ",\"node\":{}", node.0);
            }
            TraceKind::PoolDegrade { node, mb } | TraceKind::PoolRestore { node, mb } => {
                let _ = write!(s, ",\"node\":{},\"mb\":{mb}", node.0);
            }
        }
        s.push('}');
        s
    }
}

/// Where trace events go. Implementations must be cheap to clone
/// (`clone_box` — the runner is `Clone` for the bench fixtures) and
/// observation-only: a sink must never influence the simulation.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Whether this sink wants events at all. The runner caches the
    /// answer once at construction; `false` reduces every emit point to
    /// one predictable branch.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event. Called in simulation-time order.
    fn record(&mut self, ev: &TraceEvent);

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn TraceSink>;
}

impl Clone for Box<dyn TraceSink> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The zero-cost default sink: disabled, records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _ev: &TraceEvent) {}

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(NullSink)
    }
}

/// Bounded in-memory sink keeping the last N events. Clones share the
/// buffer, so callers keep a handle and read [`RingSink::events`] after
/// the run.
#[derive(Clone, Debug)]
pub struct RingSink {
    shared: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl RingSink {
    /// Create a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            shared: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared
            .lock()
            .expect("ring sink poisoned")
            .iter()
            .copied()
            .collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut buf = self.shared.lock().expect("ring sink poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(*ev);
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// Shared in-memory byte buffer implementing [`std::io::Write`]; the
/// convenient target for [`JsonlSink::buffered`].
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The buffered bytes as UTF-8 (the JSONL writer only emits ASCII).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("shared buf poisoned")).into_owned()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams one JSONL line per event to a writer. Clones share the
/// writer; the first write error is latched (see [`JsonlSink::error`])
/// and stops further output instead of panicking mid-run.
#[derive(Clone)]
pub struct JsonlSink {
    out: Arc<Mutex<Box<dyn std::io::Write + Send>>>,
    error: Arc<Mutex<Option<String>>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("error", &*self.error.lock().expect("jsonl sink poisoned"))
            .finish()
    }
}

impl JsonlSink {
    /// Stream into an arbitrary writer (a file, a pipe, a buffer).
    pub fn new(out: Box<dyn std::io::Write + Send>) -> Self {
        Self {
            out: Arc::new(Mutex::new(out)),
            error: Arc::new(Mutex::new(None)),
        }
    }

    /// Stream into a fresh in-memory buffer; returns the sink and a
    /// handle for reading the stream back after the run.
    pub fn buffered() -> (Self, SharedBuf) {
        let buf = SharedBuf::default();
        (Self::new(Box::new(buf.clone())), buf)
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<String> {
        self.error.lock().expect("jsonl sink poisoned").clone()
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("jsonl sink poisoned").flush()
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut err = self.error.lock().expect("jsonl sink poisoned");
        if err.is_some() {
            return;
        }
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let line = ev.to_jsonl();
        if let Err(e) = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
        {
            *err = Some(e.to_string());
        }
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// Run-level summary built from the event stream by [`CountingSink`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Total events recorded.
    pub total_events: u64,
    /// Job submissions (first submits plus resubmissions).
    pub job_submits: u64,
    /// Job starts.
    pub job_starts: u64,
    /// Successful completions.
    pub job_finishes: u64,
    /// Kill events (OOM, fault, exceeded-request).
    pub job_kills: u64,
    /// Resubmissions after a kill.
    pub job_requeues: u64,
    /// Decider invocations.
    pub mem_decides: u64,
    /// Decider invocations that held the allocation steady.
    pub mem_holds: u64,
    /// Executed entry grows.
    pub mem_grows: u64,
    /// Executed shrinks.
    pub mem_shrinks: u64,
    /// Injected Monitor sample losses.
    pub monitor_losses: u64,
    /// Actuator escalations (retry budget exhausted).
    pub actuator_escalations: u64,
    /// Retries by consecutive-attempt number: `histogram[i]` counts
    /// retries that were attempt `i + 1` (attempts beyond 16 saturate
    /// into the last bucket).
    pub actuator_retry_histogram: Vec<u64>,
    /// Scheduling passes that examined a non-empty window.
    pub sched_passes: u64,
    /// Queue-window jobs examined, summed over passes.
    pub jobs_considered: u64,
    /// Jobs placed by scheduling passes.
    pub jobs_placed: u64,
    /// Deepest backfill scan behind a blocked head.
    pub max_backfill_depth: u32,
    /// Injected node crashes that took effect.
    pub node_crashes: u64,
    /// Node repairs.
    pub node_repairs: u64,
    /// Pool degradations that took effect.
    pub pool_degrades: u64,
    /// Pool restores.
    pub pool_restores: u64,
    /// `(sim-time s, pending-queue depth)` samples at the sampling
    /// interval, taken at scheduling-pass starts.
    pub queue_depth_series: Vec<(f64, u32)>,
    /// `(sim-time s, allocated/capacity)` samples at the sampling
    /// interval, taken at scheduling-pass starts.
    pub pool_util_series: Vec<(f64, f64)>,
    /// Sampling interval for the time series, seconds.
    pub sample_interval_s: f64,
    next_sample_s: f64,
}

/// Retry-histogram saturation bucket (attempt numbers ≥ 16 share it).
const RETRY_HIST_BUCKETS: usize = 16;

impl RunMetrics {
    fn new(sample_interval_s: f64) -> Self {
        Self {
            sample_interval_s: sample_interval_s.max(1.0),
            ..Self::default()
        }
    }

    /// Events recorded for one subsystem, as `(subsystem, count)` rows.
    pub fn by_subsystem(&self) -> [(Subsystem, u64); 4] {
        let retries: u64 = self.actuator_retry_histogram.iter().sum();
        [
            (
                Subsystem::Job,
                self.job_submits
                    + self.job_starts
                    + self.job_finishes
                    + self.job_kills
                    + self.job_requeues,
            ),
            (
                Subsystem::Mem,
                self.mem_decides
                    + self.mem_grows
                    + self.mem_shrinks
                    + self.monitor_losses
                    + retries
                    + self.actuator_escalations,
            ),
            (Subsystem::Sched, self.sched_passes * 2),
            (
                Subsystem::Fault,
                self.node_crashes + self.node_repairs + self.pool_degrades + self.pool_restores,
            ),
        ]
    }

    fn fold(&mut self, ev: &TraceEvent) {
        self.total_events += 1;
        match ev.kind {
            TraceKind::JobSubmit { .. } => self.job_submits += 1,
            TraceKind::JobStart { .. } => self.job_starts += 1,
            TraceKind::JobFinish { .. } => self.job_finishes += 1,
            TraceKind::JobKill { .. } => self.job_kills += 1,
            TraceKind::JobRequeue { .. } => self.job_requeues += 1,
            TraceKind::MemDecide {
                grow_mb,
                shrink_to_mb,
                ..
            } => {
                self.mem_decides += 1;
                if grow_mb == 0 && shrink_to_mb == 0 {
                    self.mem_holds += 1;
                }
            }
            TraceKind::MemGrow { .. } => self.mem_grows += 1,
            TraceKind::MemShrink { .. } => self.mem_shrinks += 1,
            TraceKind::MonitorLoss { .. } => self.monitor_losses += 1,
            TraceKind::ActuatorRetry { attempt, .. } => {
                let bucket = (attempt.max(1) as usize - 1).min(RETRY_HIST_BUCKETS - 1);
                if self.actuator_retry_histogram.len() <= bucket {
                    self.actuator_retry_histogram.resize(bucket + 1, 0);
                }
                self.actuator_retry_histogram[bucket] += 1;
            }
            TraceKind::ActuatorEscalate { .. } => self.actuator_escalations += 1,
            TraceKind::SchedPassStart {
                queued,
                alloc_mb,
                cap_mb,
            } => {
                self.sched_passes += 1;
                let t = ev.t.as_secs();
                if t >= self.next_sample_s {
                    self.queue_depth_series.push((t, queued));
                    let util = if cap_mb > 0 {
                        alloc_mb as f64 / cap_mb as f64
                    } else {
                        0.0
                    };
                    self.pool_util_series.push((t, util));
                    // Skip ahead past any idle gap so a burst after a lull
                    // contributes one sample, not a backlog.
                    self.next_sample_s =
                        ((t / self.sample_interval_s).floor() + 1.0) * self.sample_interval_s;
                }
            }
            TraceKind::SchedPassEnd {
                considered,
                started,
                backfill_depth,
            } => {
                self.jobs_considered += u64::from(considered);
                self.jobs_placed += u64::from(started);
                self.max_backfill_depth = self.max_backfill_depth.max(backfill_depth);
            }
            TraceKind::NodeCrash { .. } => self.node_crashes += 1,
            TraceKind::NodeRepair { .. } => self.node_repairs += 1,
            TraceKind::PoolDegrade { .. } => self.pool_degrades += 1,
            TraceKind::PoolRestore { .. } => self.pool_restores += 1,
        }
    }
}

/// Folds the stream into a shared [`RunMetrics`]; clones share the
/// accumulator, so keep a handle and call [`CountingSink::metrics`]
/// after the run.
#[derive(Clone, Debug)]
pub struct CountingSink {
    shared: Arc<Mutex<RunMetrics>>,
}

impl CountingSink {
    /// Create a counter sampling the time series every
    /// `sample_interval_s` simulated seconds (min 1 s).
    pub fn new(sample_interval_s: f64) -> Self {
        Self {
            shared: Arc::new(Mutex::new(RunMetrics::new(sample_interval_s))),
        }
    }

    /// Snapshot of the accumulated metrics.
    pub fn metrics(&self) -> RunMetrics {
        self.shared.lock().expect("counting sink poisoned").clone()
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.shared.lock().expect("counting sink poisoned").fold(ev);
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// Duplicates every event to each child sink, in order.
#[derive(Debug)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl FanoutSink {
    /// Combine several sinks into one.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&mut self, ev: &TraceEvent) {
        for s in &mut self.sinks {
            s.record(ev);
        }
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(FanoutSink {
            sinks: self.sinks.iter().map(|s| s.clone_box()).collect(),
        })
    }
}

/// A parsed JSONL field value (the format only emits numbers, strings,
/// and booleans).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

/// One JSONL line read back as data.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedEvent {
    /// Simulation time, seconds.
    pub t: f64,
    /// The kind name (e.g. `"job_start"`).
    pub kind: String,
    /// The remaining fields, in stream order.
    pub fields: Vec<(String, JsonValue)>,
}

impl ParsedEvent {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Parse one flat JSONL object produced by [`TraceEvent::to_jsonl`].
///
/// This is a minimal hand-rolled parser (the vendored `serde` cannot
/// deserialize): it accepts exactly the flat `{"key":value,…}` shape the
/// writer emits, requires `t` and `kind`, and rejects everything else
/// with a description of the offending byte.
///
/// # Errors
/// Returns a human-readable description of the first syntax problem.
pub fn parse_jsonl(line: &str) -> Result<ParsedEvent, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut t: Option<f64> = None;
    let mut kind: Option<String> = None;
    let mut fields = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        if !fields.is_empty() || t.is_some() || kind.is_some() {
            p.expect(b',')?;
            p.skip_ws();
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.value()?;
        match (key.as_str(), &value) {
            ("t", JsonValue::Num(v)) => t = Some(*v),
            ("t", _) => return Err("field 't' must be a number".into()),
            ("kind", JsonValue::Str(v)) => kind = Some(v.clone()),
            ("kind", _) => return Err("field 'kind' must be a string".into()),
            _ => fields.push((key, value)),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(ParsedEvent {
        t: t.ok_or("missing field 't'")?,
        kind: kind.ok_or("missing field 'kind'")?,
        fields,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => return Err("escape sequences are not part of the format".into()),
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            Some(&b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            other => Err(format!(
                "unexpected value at offset {}: {:?}",
                self.pos,
                other.map(|&c| c as char)
            )),
        }
    }
}

/// Validate a JSONL event stream: every non-empty line must parse, name
/// a known kind, and carry a sim-time no earlier than the previous
/// line's. Returns the number of events.
///
/// # Errors
/// Returns `"line N: …"` for the first offending line.
pub fn validate_stream<'a>(lines: impl Iterator<Item = &'a str>) -> Result<usize, String> {
    let mut last_t = f64::NEG_INFINITY;
    let mut count = 0usize;
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !TraceKind::NAMES.contains(&ev.kind.as_str()) {
            return Err(format!("line {}: unknown kind '{}'", i + 1, ev.kind));
        }
        if ev.t < last_t {
            return Err(format!(
                "line {}: sim-time went backwards ({} after {})",
                i + 1,
                ev.t,
                last_t
            ));
        }
        last_t = ev.t;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> Vec<TraceKind> {
        vec![
            TraceKind::JobSubmit { job: JobId(1) },
            TraceKind::JobStart {
                job: JobId(1),
                nodes: 2,
                mem_mb: 4096,
                remote_mb: 1024,
            },
            TraceKind::JobFinish {
                job: JobId(1),
                restarts: 3,
            },
            TraceKind::JobKill {
                job: JobId(1),
                reason: KillReason::Oom,
                restarts: 1,
            },
            TraceKind::JobRequeue {
                job: JobId(1),
                boosted: true,
                static_mode: false,
            },
            TraceKind::MemDecide {
                job: JobId(1),
                demand_mb: 2048,
                grow_mb: 512,
                shrink_to_mb: 0,
            },
            TraceKind::MemGrow {
                job: JobId(1),
                node: NodeId(7),
                local_mb: 256,
                borrowed_mb: 256,
            },
            TraceKind::MemShrink {
                job: JobId(1),
                released_mb: 300,
            },
            TraceKind::MonitorLoss { job: JobId(1) },
            TraceKind::ActuatorRetry {
                job: JobId(1),
                attempt: 2,
                backoff_s: 60.0,
            },
            TraceKind::ActuatorEscalate {
                job: JobId(1),
                attempts: 4,
            },
            TraceKind::SchedPassStart {
                queued: 10,
                alloc_mb: 5000,
                cap_mb: 10000,
            },
            TraceKind::SchedPassEnd {
                considered: 10,
                started: 4,
                backfill_depth: 6,
            },
            TraceKind::NodeCrash { node: NodeId(3) },
            TraceKind::NodeRepair { node: NodeId(3) },
            TraceKind::PoolDegrade {
                node: NodeId(3),
                mb: 8192,
            },
            TraceKind::PoolRestore {
                node: NodeId(3),
                mb: 8192,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_jsonl() {
        let kinds = every_kind();
        assert_eq!(kinds.len(), TraceKind::NAMES.len());
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = TraceEvent {
                t: SimTime::from_secs(i as f64 + 0.5),
                kind,
            };
            let line = ev.to_jsonl();
            let parsed = parse_jsonl(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed.kind, kind.name(), "{line}");
            assert!((parsed.t - ev.t.as_secs()).abs() < 1e-9);
            assert_eq!(
                TraceKind::NAMES[i],
                kind.name(),
                "NAMES order matches taxonomy"
            );
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"t\":1.0}",
            "{\"kind\":\"job_submit\"}",
            "{\"t\":\"x\",\"kind\":\"job_submit\"}",
            "{\"t\":1.0,\"kind\":\"job_submit\"} trailing",
            "{\"t\":1.0 \"kind\":\"job_submit\"}",
            "not json",
        ] {
            assert!(parse_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validate_stream_checks_kind_and_monotonicity() {
        let good = "{\"t\":1.0,\"kind\":\"job_submit\",\"job\":0}\n{\"t\":1.0,\"kind\":\"job_start\",\"job\":0,\"nodes\":1,\"mem_mb\":1,\"remote_mb\":0}";
        assert_eq!(validate_stream(good.lines()), Ok(2));

        let unknown = "{\"t\":1.0,\"kind\":\"warp_drive\"}";
        assert!(validate_stream(unknown.lines())
            .unwrap_err()
            .contains("unknown kind"));

        let backwards = "{\"t\":2.0,\"kind\":\"job_submit\",\"job\":0}\n{\"t\":1.0,\"kind\":\"job_submit\",\"job\":1}";
        assert!(validate_stream(backwards.lines())
            .unwrap_err()
            .contains("went backwards"));
    }

    #[test]
    fn ring_sink_keeps_last_n() {
        let ring = RingSink::new(3);
        let mut sink: Box<dyn TraceSink> = Box::new(ring.clone());
        for i in 0..5u32 {
            sink.record(&TraceEvent {
                t: SimTime::from_secs(f64::from(i)),
                kind: TraceKind::JobSubmit { job: JobId(i) },
            });
        }
        let kept = ring.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].kind, TraceKind::JobSubmit { job: JobId(2) });
        assert_eq!(kept[2].kind, TraceKind::JobSubmit { job: JobId(4) });
    }

    #[test]
    fn counting_sink_builds_histogram_and_series() {
        let counting = CountingSink::new(10.0);
        let mut sink: Box<dyn TraceSink> = Box::new(counting.clone());
        for (t, attempt) in [(0.0, 1), (1.0, 1), (2.0, 2), (3.0, 99)] {
            sink.record(&TraceEvent {
                t: SimTime::from_secs(t),
                kind: TraceKind::ActuatorRetry {
                    job: JobId(0),
                    attempt,
                    backoff_s: 30.0,
                },
            });
        }
        for t in [0.0, 5.0, 10.0, 11.0, 35.0] {
            sink.record(&TraceEvent {
                t: SimTime::from_secs(t),
                kind: TraceKind::SchedPassStart {
                    queued: 4,
                    alloc_mb: 500,
                    cap_mb: 1000,
                },
            });
        }
        let m = counting.metrics();
        assert_eq!(m.actuator_retry_histogram[0], 2);
        assert_eq!(m.actuator_retry_histogram[1], 1);
        assert_eq!(m.actuator_retry_histogram[RETRY_HIST_BUCKETS - 1], 1);
        assert_eq!(m.sched_passes, 5);
        // Samples at t=0, t=10 (first crossing), t=35 (gap skipped).
        assert_eq!(
            m.queue_depth_series
                .iter()
                .map(|&(t, _)| t)
                .collect::<Vec<_>>(),
            vec![0.0, 10.0, 35.0]
        );
        assert!((m.pool_util_series[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(m.total_events, 9);
    }

    #[test]
    fn fanout_and_null_compose() {
        let ring = RingSink::new(8);
        let fanout = FanoutSink::new(vec![Box::new(NullSink), Box::new(ring.clone())]);
        assert!(fanout.enabled());
        assert!(!FanoutSink::new(vec![Box::new(NullSink)]).enabled());
        let mut boxed: Box<dyn TraceSink> = Box::new(fanout);
        let cloned = boxed.clone();
        boxed.record(&TraceEvent {
            t: SimTime::ZERO,
            kind: TraceKind::NodeCrash { node: NodeId(0) },
        });
        drop(cloned);
        assert_eq!(ring.events().len(), 1);
        assert!(!NullSink.enabled());
    }

    #[test]
    fn jsonl_sink_streams_and_latches_errors() {
        let (mut sink, buf) = JsonlSink::buffered();
        sink.record(&TraceEvent {
            t: SimTime::from_secs(1.0),
            kind: TraceKind::JobSubmit { job: JobId(0) },
        });
        sink.record(&TraceEvent {
            t: SimTime::from_secs(2.0),
            kind: TraceKind::JobFinish {
                job: JobId(0),
                restarts: 0,
            },
        });
        let text = buf.contents();
        assert_eq!(text.lines().count(), 2);
        assert_eq!(validate_stream(text.lines()), Ok(2));
        assert!(sink.error().is_none());

        #[derive(Debug)]
        struct FailWriter;
        impl std::io::Write for FailWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut failing = JsonlSink::new(Box::new(FailWriter));
        failing.record(&TraceEvent {
            t: SimTime::ZERO,
            kind: TraceKind::JobSubmit { job: JobId(0) },
        });
        assert!(failing.error().unwrap().contains("disk full"));
    }
}
