//! The contention model: remote fraction × sensitivity(pressure).
//!
//! Given a job whose memory is partly remote, the model computes the job's
//! slowdown as
//!
//! ```text
//! slowdown = 1 + remote_fraction × (sensitivity(pressure) − 1)
//! ```
//!
//! where `pressure` is the aggregate remote bandwidth demand on the most
//! loaded link the job borrows from, divided by the link capacity. With a
//! fully local job (`remote_fraction = 0`) the slowdown is exactly 1; with
//! a fully remote job it is the raw curve value. This is the
//! interpolation the SC-W'23 evaluation relies on: remote accesses do not
//! create *cache* contention in the disaggregated system, only latency and
//! bandwidth effects (paper §2.1), so scaling by the remote fraction is
//! the right first-order composition.

use crate::profile::AppProfile;
use serde::{Deserialize, Serialize};

/// Remote-access situation of one job at one instant, as seen by the
/// simulator's memory ledger.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RemoteAccess {
    /// Fraction of the job's allocated memory that is remote, in `[0, 1]`.
    pub remote_fraction: f64,
    /// Aggregate bandwidth demand on the hottest remote link the job
    /// uses, divided by that link's capacity. 0 when nothing is remote.
    pub pressure: f64,
}

impl RemoteAccess {
    /// A fully local job: no remote memory, no pressure.
    pub const LOCAL: RemoteAccess = RemoteAccess {
        remote_fraction: 0.0,
        pressure: 0.0,
    };
}

/// Parameters of the cluster-wide contention model.
///
/// ```
/// use dmhpc_model::{ContentionModel, ProfilePool, RemoteAccess};
///
/// let model = ContentionModel::default();
/// let pool = ProfilePool::synthetic(8, 1);
/// let profile = &pool.profiles()[0];
/// // Fully local jobs never slow down…
/// assert_eq!(model.slowdown(profile, RemoteAccess::LOCAL), 1.0);
/// // …and slowdown grows with the remote fraction.
/// let quarter = model.slowdown(profile, RemoteAccess { remote_fraction: 0.25, pressure: 0.5 });
/// let half = model.slowdown(profile, RemoteAccess { remote_fraction: 0.5, pressure: 0.5 });
/// assert!(half >= quarter && quarter >= 1.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Capacity of one node's remote-memory link in GB/s. The Grizzly-era
    /// interconnect (Intel Omni-Path, 100 Gb/s) gives 12.5 GB/s per
    /// direction, which is the default.
    pub link_capacity_gbs: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        Self {
            link_capacity_gbs: 12.5,
        }
    }
}

impl ContentionModel {
    /// Create a model with an explicit link capacity.
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive.
    pub fn new(link_capacity_gbs: f64) -> Self {
        assert!(
            link_capacity_gbs > 0.0,
            "link capacity must be positive, got {link_capacity_gbs}"
        );
        Self { link_capacity_gbs }
    }

    /// Convert an aggregate demand in GB/s into a pressure value.
    #[inline]
    pub fn pressure(&self, aggregate_demand_gbs: f64) -> f64 {
        (aggregate_demand_gbs / self.link_capacity_gbs).max(0.0)
    }

    /// Slowdown multiplier (≥ 1) for `profile` under `access`.
    pub fn slowdown(&self, profile: &AppProfile, access: RemoteAccess) -> f64 {
        let r = access.remote_fraction.clamp(0.0, 1.0);
        if r == 0.0 {
            return 1.0;
        }
        let curve = profile.sensitivity.slowdown(access.pressure);
        1.0 + r * (curve - 1.0)
    }

    /// The bandwidth demand this job contributes to the remote links it
    /// borrows from, in GB/s: its contentiousness scaled by how much of
    /// its footprint is remote.
    #[inline]
    pub fn remote_demand_gbs(&self, profile: &AppProfile, remote_fraction: f64) -> f64 {
        profile.bandwidth_gbs * remote_fraction.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileId;
    use crate::sensitivity::SensitivityCurve;

    fn profile_with_curve(curve: SensitivityCurve) -> AppProfile {
        AppProfile {
            id: ProfileId(1),
            name: "p".into(),
            nodes_hint: 4,
            runtime_hint_s: 100.0,
            bandwidth_gbs: 10.0,
            read_ratio: 0.6,
            sensitivity: curve,
        }
    }

    #[test]
    fn local_job_never_slows() {
        let m = ContentionModel::default();
        let p = profile_with_curve(SensitivityCurve::kneed(1.5, 0.8, 4.0));
        assert_eq!(m.slowdown(&p, RemoteAccess::LOCAL), 1.0);
    }

    #[test]
    fn fully_remote_equals_curve() {
        let m = ContentionModel::default();
        let c = SensitivityCurve::new(vec![(0.0, 1.4), (1.0, 2.0)]).unwrap();
        let p = profile_with_curve(c.clone());
        let acc = RemoteAccess {
            remote_fraction: 1.0,
            pressure: 0.5,
        };
        assert!((m.slowdown(&p, acc) - c.slowdown(0.5)).abs() < 1e-12);
    }

    #[test]
    fn half_remote_is_midpoint() {
        let m = ContentionModel::default();
        let c = SensitivityCurve::new(vec![(0.0, 2.0)]).unwrap();
        let p = profile_with_curve(c);
        let acc = RemoteAccess {
            remote_fraction: 0.5,
            pressure: 0.0,
        };
        assert!((m.slowdown(&p, acc) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slowdown_monotone_in_pressure() {
        let m = ContentionModel::default();
        let p = profile_with_curve(SensitivityCurve::kneed(1.1, 0.9, 3.0));
        let mut prev = 0.0;
        for i in 0..50 {
            let acc = RemoteAccess {
                remote_fraction: 0.7,
                pressure: i as f64 * 0.1,
            };
            let s = m.slowdown(&p, acc);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn remote_fraction_clamped() {
        let m = ContentionModel::default();
        let p = profile_with_curve(SensitivityCurve::new(vec![(0.0, 3.0)]).unwrap());
        let over = RemoteAccess {
            remote_fraction: 2.0,
            pressure: 0.0,
        };
        assert!((m.slowdown(&p, over) - 3.0).abs() < 1e-12);
        let under = RemoteAccess {
            remote_fraction: -1.0,
            pressure: 0.0,
        };
        assert_eq!(m.slowdown(&p, under), 1.0);
    }

    #[test]
    fn pressure_from_demand() {
        let m = ContentionModel::new(10.0);
        assert!((m.pressure(25.0) - 2.5).abs() < 1e-12);
        assert_eq!(m.pressure(-3.0), 0.0);
    }

    #[test]
    fn remote_demand_scales_with_fraction() {
        let m = ContentionModel::default();
        let p = profile_with_curve(SensitivityCurve::insensitive());
        assert!((m.remote_demand_gbs(&p, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(m.remote_demand_gbs(&p, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        ContentionModel::new(0.0);
    }
}
