//! Application sensitivity curves.
//!
//! A sensitivity curve relates remote-memory bandwidth **pressure** (the
//! ratio of aggregate remote bandwidth demand to the link capacity that
//! serves it) to a **slowdown multiplier** ≥ 1. Pressure 0 means the job
//! has the remote link to itself; pressure 1 means demand exactly saturates
//! the link; pressure > 1 means the link is oversubscribed and everyone
//! queues.
//!
//! Curves are piecewise-linear and monotonically non-decreasing, matching
//! how the original model was fitted from measured co-location runs.

use serde::{Deserialize, Serialize};

/// A monotone piecewise-linear map from bandwidth pressure to slowdown.
///
/// Invariants (enforced by [`SensitivityCurve::new`]):
/// * at least one point;
/// * pressures strictly increasing;
/// * slowdowns ≥ 1 and non-decreasing.
///
/// Evaluation clamps outside the defined range: below the first point the
/// first slowdown applies, beyond the last point the curve continues with
/// the slope of its final segment (an oversubscribed link degrades roughly
/// linearly in queueing delay).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensitivityCurve {
    points: Vec<(f64, f64)>,
}

impl SensitivityCurve {
    /// Build a curve from `(pressure, slowdown)` control points.
    ///
    /// # Errors
    /// Returns a description of the violated invariant.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, String> {
        if points.is_empty() {
            return Err("sensitivity curve needs at least one point".into());
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "pressures must be strictly increasing: {} then {}",
                    w[0].0, w[1].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "slowdowns must be non-decreasing: {} then {}",
                    w[0].1, w[1].1
                ));
            }
        }
        for &(p, s) in &points {
            if !p.is_finite() || !s.is_finite() {
                return Err("curve points must be finite".into());
            }
            if s < 1.0 {
                return Err(format!("slowdown {s} < 1"));
            }
            if p < 0.0 {
                return Err(format!("pressure {p} < 0"));
            }
        }
        Ok(Self { points })
    }

    /// A curve that never slows down (fully cache-resident application).
    pub fn insensitive() -> Self {
        Self {
            points: vec![(0.0, 1.0)],
        }
    }

    /// Canonical curve family used by the synthetic profile pool.
    ///
    /// `base` is the slowdown at zero contention (pure remote-access
    /// latency cost, ≥ 1); `slope` is the additional slowdown per unit of
    /// pressure once the link saturates; `knee` is the pressure at which
    /// contention starts to bite (typically just below 1).
    pub fn kneed(base: f64, knee: f64, slope: f64) -> Self {
        assert!(base >= 1.0 && knee > 0.0 && slope >= 0.0);
        Self {
            points: vec![
                (0.0, base),
                (knee, base + 0.05 * slope),
                (knee + 1.0, base + 1.05 * slope),
            ],
        }
    }

    /// Evaluate the curve at the given pressure (≥ 0).
    pub fn slowdown(&self, pressure: f64) -> f64 {
        let pressure = pressure.max(0.0);
        let pts = &self.points;
        if pressure <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (p0, s0) = w[0];
            let (p1, s1) = w[1];
            if pressure <= p1 {
                let t = (pressure - p0) / (p1 - p0);
                return s0 + t * (s1 - s0);
            }
        }
        // Extrapolate with the final segment's slope.
        let n = pts.len();
        if n == 1 {
            return pts[0].1;
        }
        let (p0, s0) = pts[n - 2];
        let (p1, s1) = pts[n - 1];
        let slope = (s1 - s0) / (p1 - p0);
        s1 + slope * (pressure - p1)
    }

    /// Slowdown at zero pressure: the pure remote-latency penalty.
    pub fn base_slowdown(&self) -> f64 {
        self.points[0].1
    }

    /// The control points of the curve.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert!(SensitivityCurve::new(vec![]).is_err());
    }

    #[test]
    fn rejects_decreasing_pressure() {
        assert!(SensitivityCurve::new(vec![(0.0, 1.0), (0.0, 1.5)]).is_err());
        assert!(SensitivityCurve::new(vec![(1.0, 1.0), (0.5, 1.5)]).is_err());
    }

    #[test]
    fn rejects_decreasing_slowdown() {
        assert!(SensitivityCurve::new(vec![(0.0, 2.0), (1.0, 1.5)]).is_err());
    }

    #[test]
    fn rejects_sub_unity_slowdown() {
        assert!(SensitivityCurve::new(vec![(0.0, 0.9)]).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        assert!(SensitivityCurve::new(vec![(0.0, f64::NAN)]).is_err());
        assert!(SensitivityCurve::new(vec![(f64::INFINITY, 2.0)]).is_err());
    }

    #[test]
    fn interpolates_linearly() {
        let c = SensitivityCurve::new(vec![(0.0, 1.0), (1.0, 3.0)]).unwrap();
        assert_eq!(c.slowdown(0.0), 1.0);
        assert_eq!(c.slowdown(0.5), 2.0);
        assert_eq!(c.slowdown(1.0), 3.0);
    }

    #[test]
    fn clamps_below_and_extrapolates_above() {
        let c = SensitivityCurve::new(vec![(0.5, 1.2), (1.0, 2.0)]).unwrap();
        assert_eq!(c.slowdown(0.0), 1.2);
        assert_eq!(c.slowdown(-5.0), 1.2);
        // Final slope is (2.0-1.2)/0.5 = 1.6 per unit pressure.
        assert!((c.slowdown(2.0) - (2.0 + 1.6)).abs() < 1e-12);
    }

    #[test]
    fn single_point_is_constant() {
        let c = SensitivityCurve::new(vec![(0.0, 1.5)]).unwrap();
        assert_eq!(c.slowdown(0.0), 1.5);
        assert_eq!(c.slowdown(100.0), 1.5);
    }

    #[test]
    fn insensitive_is_identity() {
        let c = SensitivityCurve::insensitive();
        assert_eq!(c.slowdown(10.0), 1.0);
        assert_eq!(c.base_slowdown(), 1.0);
    }

    #[test]
    fn kneed_shape() {
        let c = SensitivityCurve::kneed(1.1, 0.9, 2.0);
        assert!((c.base_slowdown() - 1.1).abs() < 1e-12);
        // Below knee: near-flat.
        assert!(c.slowdown(0.5) < 1.2);
        // Past knee: grows.
        assert!(c.slowdown(2.0) > c.slowdown(1.0));
    }

    #[test]
    fn monotone_everywhere() {
        let c = SensitivityCurve::kneed(1.05, 0.8, 3.0);
        let mut prev = 0.0;
        for i in 0..200 {
            let p = i as f64 * 0.05;
            let s = c.slowdown(p);
            assert!(s >= prev, "not monotone at pressure {p}");
            prev = s;
        }
    }
}
