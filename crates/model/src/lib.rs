//! # dmhpc-model — contention-aware slowdown model for disaggregated memory
//!
//! This crate implements the performance model used by the simulator to
//! quantify the slowdown a job experiences when part of its memory is
//! served from a *remote* (disaggregated) memory pool instead of node-local
//! DRAM. It reproduces the model of Zacarias, Nishtala and Carpenter,
//! *Contention-aware application performance prediction for disaggregated
//! memory systems* (CF'20), as used by the SC-W 2023 paper:
//!
//! * every application is characterised by a **sensitivity curve**, a
//!   monotone function relating remote-memory bandwidth *pressure* to a
//!   slowdown multiplier, and
//! * a **contentiousness** figure: the remote bandwidth the application
//!   would consume when running at full performance.
//!
//! The simulator aggregates the contentiousness of all jobs borrowing
//! memory from the same lender link, derives a pressure value, and asks
//! each affected job's sensitivity curve for the resulting multiplier. The
//! multiplier is then scaled by the fraction of the job's memory that is
//! remote, so a job with 100% local memory never slows down.
//!
//! Application profiling is *only* an input to the simulation methodology;
//! the resource-management policy itself never sees these profiles
//! (mirroring §2.1 of the paper).
//!
//! The crate also provides:
//!
//! * [`ProfilePool`] — a synthetic pool of profiled applications spanning
//!   the model's parameter space, with the nearest-neighbour matching used
//!   by the trace pipeline (paper §3.2, Fig. 3 steps 2–3), and
//! * [`rng`] — a small, self-contained, version-stable deterministic PRNG
//!   (xoshiro256**), so simulation results are bit-reproducible regardless
//!   of the `rand` crate's internal algorithm choices.

#![warn(missing_docs)]

pub mod contention;
pub mod pool;
pub mod profile;
pub mod rng;
pub mod sensitivity;

pub use contention::{ContentionModel, RemoteAccess};
pub use pool::ProfilePool;
pub use profile::{AppProfile, ProfileId};
pub use sensitivity::SensitivityCurve;
