//! Synthetic pool of profiled applications.
//!
//! The paper's methodology keeps a pool of applications that were profiled
//! on real hardware (size, runtime, memory bandwidth, read/write ratio,
//! sensitivity). That pool is proprietary to the authors' testbed, so we
//! generate a synthetic pool spanning the same parameter space:
//!
//! * node counts follow the power-of-two-biased distribution of HPC jobs;
//! * runtimes are log-normal (minutes to a day);
//! * bandwidth demand is uniform over 1–11 GB/s per node, covering both
//!   compute-bound and bandwidth-bound codes;
//! * sensitivity curves use the kneed family: latency penalty 1.02–1.6×,
//!   contention slope correlated with bandwidth demand and read ratio
//!   (bandwidth-hungry, read-heavy codes suffer most from a saturated
//!   link, mirroring the measured curves in the CF'20 paper).
//!
//! Matching (Fig. 3 step 3) is nearest-neighbour in normalised
//! `(nodes, runtime)` space via [`ProfilePool::match_job`].

use crate::profile::{AppProfile, ProfileId};
use crate::rng::Rng64;
use crate::sensitivity::SensitivityCurve;
use serde::{Deserialize, Serialize};

/// A pool of application profiles plus cached normalisation constants for
/// nearest-neighbour matching.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfilePool {
    profiles: Vec<AppProfile>,
    node_scale: f64,
    runtime_scale: f64,
}

impl ProfilePool {
    /// Build a pool from explicit profiles.
    ///
    /// # Panics
    /// Panics if `profiles` is empty (matching would be undefined).
    pub fn new(profiles: Vec<AppProfile>) -> Self {
        assert!(!profiles.is_empty(), "profile pool cannot be empty");
        let node_scale = profiles
            .iter()
            .map(|p| p.nodes_hint as f64)
            .fold(1.0, f64::max);
        let runtime_scale = profiles
            .iter()
            .map(|p| p.runtime_hint_s)
            .fold(1.0, f64::max);
        Self {
            profiles,
            node_scale,
            runtime_scale,
        }
    }

    /// Generate a synthetic pool of `n` profiles, deterministic in `seed`.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        assert!(n > 0, "pool size must be positive");
        let mut rng = Rng64::stream(seed, 0xB00);
        let mut profiles = Vec::with_capacity(n);
        for i in 0..n {
            let power = rng.range_u64(0, 7); // 1..=128 nodes
            let jitter = rng.chance(0.3);
            let mut nodes = 1u32 << power;
            if jitter && nodes > 1 {
                // Some codes run on non-power-of-two node counts.
                nodes = nodes - (rng.below(nodes as u64 / 2) as u32);
            }
            // Runtime: log-normal centred on ~1 h, spanning ~2 min–24 h.
            let runtime = rng.lognormal(8.2, 1.3).clamp(120.0, 86_400.0);
            let bandwidth = rng.range_f64(1.0, 11.0);
            let read_ratio = rng.range_f64(0.4, 0.95);
            // Latency penalty: memory-intensity proxy = bandwidth/11.
            let intensity = bandwidth / 11.0;
            let base = 1.02 + 0.58 * intensity * rng.range_f64(0.6, 1.0);
            let knee = rng.range_f64(0.7, 0.95);
            let slope = (0.5 + 3.5 * intensity) * (0.5 + read_ratio);
            profiles.push(AppProfile {
                id: ProfileId(i as u32),
                name: format!("app-{i:03}"),
                nodes_hint: nodes.max(1),
                runtime_hint_s: runtime,
                bandwidth_gbs: bandwidth,
                read_ratio,
                sensitivity: SensitivityCurve::kneed(base, knee, slope),
            });
        }
        Self::new(profiles)
    }

    /// Number of profiles in the pool.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the pool is empty (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All profiles.
    pub fn profiles(&self) -> &[AppProfile] {
        &self.profiles
    }

    /// Profile lookup by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this pool.
    pub fn get(&self, id: ProfileId) -> &AppProfile {
        &self.profiles[id.0 as usize]
    }

    /// Match a job to the nearest profile in normalised `(nodes, runtime)`
    /// space (Fig. 3 step 3). Ties break towards the lower profile id,
    /// which keeps matching deterministic.
    pub fn match_job(&self, nodes: u32, runtime_s: f64) -> ProfileId {
        let mut best = ProfileId(0);
        let mut best_d = f64::INFINITY;
        for p in &self.profiles {
            let d = p.match_distance2(nodes, runtime_s, self.node_scale, self.runtime_scale);
            if d < best_d {
                best_d = d;
                best = p.id;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = ProfilePool::synthetic(64, 7);
        let b = ProfilePool::synthetic(64, 7);
        for (pa, pb) in a.profiles().iter().zip(b.profiles()) {
            assert_eq!(pa.nodes_hint, pb.nodes_hint);
            assert_eq!(pa.runtime_hint_s, pb.runtime_hint_s);
            assert_eq!(pa.bandwidth_gbs, pb.bandwidth_gbs);
        }
    }

    #[test]
    fn synthetic_differs_across_seeds() {
        let a = ProfilePool::synthetic(64, 7);
        let b = ProfilePool::synthetic(64, 8);
        let same = a
            .profiles()
            .iter()
            .zip(b.profiles())
            .filter(|(x, y)| x.runtime_hint_s == y.runtime_hint_s)
            .count();
        assert!(same < 4);
    }

    #[test]
    fn synthetic_parameters_in_range() {
        let pool = ProfilePool::synthetic(256, 3);
        for p in pool.profiles() {
            assert!((1..=128).contains(&p.nodes_hint));
            assert!((120.0..=86_400.0).contains(&p.runtime_hint_s));
            assert!((1.0..=11.0).contains(&p.bandwidth_gbs));
            assert!((0.4..=0.95).contains(&p.read_ratio));
            assert!(p.sensitivity.base_slowdown() >= 1.0);
        }
    }

    #[test]
    fn match_exact_profile_hits_itself() {
        let pool = ProfilePool::synthetic(32, 11);
        for p in pool.profiles() {
            let id = pool.match_job(p.nodes_hint, p.runtime_hint_s);
            let matched = pool.get(id);
            // Either itself or an identical-hint twin.
            assert_eq!(
                (matched.nodes_hint, matched.runtime_hint_s),
                (p.nodes_hint, p.runtime_hint_s)
            );
        }
    }

    #[test]
    fn match_prefers_nearby() {
        let mk = |id: u32, nodes: u32, rt: f64| AppProfile {
            id: ProfileId(id),
            name: format!("a{id}"),
            nodes_hint: nodes,
            runtime_hint_s: rt,
            bandwidth_gbs: 5.0,
            read_ratio: 0.5,
            sensitivity: SensitivityCurve::insensitive(),
        };
        let pool = ProfilePool::new(vec![mk(0, 1, 100.0), mk(1, 64, 100.0), mk(2, 64, 80_000.0)]);
        assert_eq!(pool.match_job(2, 90.0), ProfileId(0));
        assert_eq!(pool.match_job(60, 200.0), ProfileId(1));
        assert_eq!(pool.match_job(64, 70_000.0), ProfileId(2));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_pool_rejected() {
        ProfilePool::new(vec![]);
    }

    #[test]
    fn bandwidth_correlates_with_slope() {
        // Pool-level sanity: the most bandwidth-hungry quartile should have
        // visibly steeper curves at pressure 2 than the least hungry one.
        let pool = ProfilePool::synthetic(400, 21);
        let mut hungry = Vec::new();
        let mut light = Vec::new();
        for p in pool.profiles() {
            let s = p.sensitivity.slowdown(2.0);
            if p.bandwidth_gbs > 8.5 {
                hungry.push(s);
            } else if p.bandwidth_gbs < 3.5 {
                light.push(s);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&hungry) > avg(&light));
    }
}
