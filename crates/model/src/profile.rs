//! Profiled application descriptions.
//!
//! The simulation methodology characterises each application by the
//! figures the contention model needs (paper §2.1): a sensitivity curve, a
//! contentiousness value (remote bandwidth at full performance), the
//! read/write ratio, and the size/runtime hints used to match synthetic
//! jobs to profiled applications (Fig. 3 steps 2–3).

use crate::sensitivity::SensitivityCurve;
use serde::{Deserialize, Serialize};

/// Index of a profile inside its [`crate::ProfilePool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProfileId(pub u32);

/// A profiled application: everything the contention model and the trace
/// matching pipeline need to know about one workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppProfile {
    /// Stable identifier within the pool.
    pub id: ProfileId,
    /// Human-readable name (synthetic pools generate e.g. `app-017`).
    pub name: String,
    /// Typical number of nodes this application runs on (matching hint).
    pub nodes_hint: u32,
    /// Typical runtime in seconds at full performance (matching hint).
    pub runtime_hint_s: f64,
    /// Contentiousness: memory bandwidth demand at full performance, in
    /// GB/s per node. When a fraction `r` of the job's memory is remote,
    /// the remote link sees `r * bandwidth_gbs` of demand from this job.
    pub bandwidth_gbs: f64,
    /// Fraction of memory traffic that is reads (0..=1). Reads stall the
    /// pipeline; profiles with higher read ratios get steeper curves in
    /// the synthetic pool.
    pub read_ratio: f64,
    /// Sensitivity of performance to remote-bandwidth pressure.
    pub sensitivity: SensitivityCurve,
}

impl AppProfile {
    /// Squared Euclidean distance between this profile's hints and a job's
    /// `(nodes, runtime)` in the normalised space used by the matching
    /// step. `node_scale` and `runtime_scale` are the normalisation
    /// constants (typically the max over the pool).
    pub fn match_distance2(
        &self,
        nodes: u32,
        runtime_s: f64,
        node_scale: f64,
        runtime_scale: f64,
    ) -> f64 {
        let dn = (self.nodes_hint as f64 - nodes as f64) / node_scale.max(1.0);
        let dr = (self.runtime_hint_s - runtime_s) / runtime_scale.max(1.0);
        dn * dn + dr * dr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(nodes: u32, runtime: f64) -> AppProfile {
        AppProfile {
            id: ProfileId(0),
            name: "t".into(),
            nodes_hint: nodes,
            runtime_hint_s: runtime,
            bandwidth_gbs: 5.0,
            read_ratio: 0.7,
            sensitivity: SensitivityCurve::insensitive(),
        }
    }

    #[test]
    fn distance_zero_for_exact_match() {
        let p = profile(8, 3600.0);
        assert_eq!(p.match_distance2(8, 3600.0, 128.0, 86_400.0), 0.0);
    }

    #[test]
    fn distance_grows_with_gap() {
        let p = profile(8, 3600.0);
        let near = p.match_distance2(9, 3600.0, 128.0, 86_400.0);
        let far = p.match_distance2(64, 3600.0, 128.0, 86_400.0);
        assert!(far > near);
    }

    #[test]
    fn distance_is_scale_normalised() {
        let p = profile(8, 3600.0);
        // A 1-node gap with scale 1 equals a 3600 s gap with scale 3600.
        let a = p.match_distance2(9, 3600.0, 1.0, 86_400.0);
        let b = p.match_distance2(8, 7200.0, 128.0, 3600.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn zero_scales_do_not_divide_by_zero() {
        let p = profile(8, 3600.0);
        let d = p.match_distance2(9, 3700.0, 0.0, 0.0);
        assert!(d.is_finite());
    }
}
