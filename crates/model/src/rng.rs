//! Deterministic, version-stable pseudo-random number generation.
//!
//! Simulation experiments must be bit-reproducible across machines and
//! across upgrades of the `rand` crate, whose `StdRng` algorithm is
//! explicitly unstable. This module implements **xoshiro256\*\*** (Blackman
//! & Vigna, 2018) seeded through **SplitMix64**, and plugs it into the
//! `rand` ecosystem by implementing [`rand::RngCore`], so all of `rand`'s
//! distribution adaptors work on top of it.
//!
//! Streams: [`Rng64::stream`] derives an independent generator from a base
//! seed and a stream index, so each job / module / week can draw from its
//! own decorrelated sequence without coordination.

use rand::RngCore;

/// SplitMix64 step; used for seeding and for cheap stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256\*\* generator: fast, 256-bit state, passes BigCrush.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; SplitMix64 cannot
        // produce four consecutive zeros, but keep the guard for clarity.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// Derive an independent generator for `(seed, stream)`.
    ///
    /// Different streams produce decorrelated sequences: the stream index
    /// is mixed into the seed through SplitMix64 before expansion.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut sm = seed;
        let a = splitmix64(&mut sm);
        Self::new(a ^ stream.wrapping_mul(0xD2B7_4407_B1CE_6E93).rotate_left(17))
    }

    /// Next raw 64-bit output.
    ///
    /// Named after the xoshiro reference implementation; this type is not
    /// an `Iterator`, so the name cannot collide in practice.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo <= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng64::below(0)");
        // Unbiased bounded generation (Lemire 2019).
        let mut x = self.next();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Marsaglia polar method).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Log-normal deviate with the given parameters of the underlying
    /// normal distribution.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential deviate with the given rate `lambda` (mean `1/lambda`).
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        // 1 - f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Pick an index according to unnormalised non-negative `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "Rng64::weighted: weights must sum to > 0");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

impl RngCore for Rng64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_decorrelated() {
        let mut a = Rng64::stream(7, 0);
        let mut b = Rng64::stream(7, 1);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_one_is_zero() {
        let mut r = Rng64::new(5);
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn range_u64_inclusive() {
        let mut r = Rng64::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = r.range_u64(3, 5);
            assert!((3..=5).contains(&x));
            lo_seen |= x == 3;
            hi_seen |= x == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng64::new(17);
        let n = 200_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_positive() {
        let mut r = Rng64::new(19);
        for _ in 0..10_000 {
            assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut r = Rng64::new(23);
        for _ in 0..10_000 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_roughly_proportional() {
        let mut r = Rng64::new(29);
        let mut counts = [0usize; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[r.weighted(&[1.0, 2.0, 6.0])] += 1;
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 1.0 / 9.0).abs() < 0.01);
        assert!((f(counts[1]) - 2.0 / 9.0).abs() < 0.01);
        assert!((f(counts[2]) - 6.0 / 9.0).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(31);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_remainder_path() {
        let mut r = Rng64::new(37);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Overwhelmingly unlikely to be all zeros.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
