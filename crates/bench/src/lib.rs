//! Benchmark harness crate (benches only; see `benches/`).
