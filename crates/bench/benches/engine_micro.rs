//! Micro-benchmarks of the simulator's hot paths: the event queue, job
//! placement, the memory ledger, one full simulation, and the metric
//! kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dmhpc_core::cluster::{Cluster, MemoryMix};
use dmhpc_core::config::SystemConfig;
use dmhpc_core::engine::{EventKind, EventQueue, SimTime};
use dmhpc_core::job::JobId;
use dmhpc_core::policy::{try_place, PolicyKind};
use dmhpc_core::sim::{SchedPassBench, Simulation};
use dmhpc_experiments::scenario::{synthetic_system, synthetic_workload};
use dmhpc_experiments::Scale;
use dmhpc_metrics::ecdf::Ecdf;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Interleaved times exercise heap reordering.
            for i in 0..n {
                let t = SimTime((i * 2_654_435_761) % 1_000_000_000);
                q.push(t, EventKind::Submit(JobId(i as u32)));
            }
            let mut last = SimTime::ZERO;
            while let Some(e) = q.pop() {
                debug_assert!(e.time >= last);
                last = e.time;
            }
            black_box(last)
        })
    });
    g.finish();
}

fn busy_cluster(nodes: u32) -> Cluster {
    let cfg = SystemConfig::with_nodes(nodes).with_memory_mix(MemoryMix::half_large());
    let mut c = Cluster::from_config(&cfg);
    // Occupy 70% of nodes with 48 GB jobs.
    let mut id = 0u32;
    for _ in 0..(nodes * 7 / 10) {
        if let Some(alloc) = try_place(&c, PolicyKind::Static, 1, 48 * 1024) {
            c.start_job(JobId(id), alloc, 4.0);
            id += 1;
        }
    }
    c
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    for &nodes in &[256u32, 1024] {
        let cluster = busy_cluster(nodes);
        g.bench_function(format!("try_place_local_{nodes}"), |b| {
            b.iter(|| black_box(try_place(&cluster, PolicyKind::Static, 4, 16 * 1024)))
        });
        g.bench_function(format!("try_place_borrowing_{nodes}"), |b| {
            b.iter(|| black_box(try_place(&cluster, PolicyKind::Static, 4, 100 * 1024)))
        });
    }
    g.finish();
}

fn bench_sched_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_pass");
    // 1490 ≈ the paper's Grizzly cluster; 256/1024 are the synthetic
    // scales. Each iteration replays one scheduling pass on a clone of
    // the frozen high-pressure state (clone time excluded).
    for &nodes in &[256u32, 1024, 1490] {
        for (label, reference) in [("indexed", false), ("reference", true)] {
            let fixture = SchedPassBench::new(nodes, 256, 0xBE7C, reference);
            g.bench_function(format!("pass_{label}_{nodes}"), |b| {
                b.iter_batched(
                    || fixture.clone(),
                    |mut f| black_box(f.run_pass()),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_ledger(c: &mut Criterion) {
    let mut g = c.benchmark_group("ledger");
    g.bench_function("start_finish_roundtrip_1024", |b| {
        let cluster = busy_cluster(1024);
        let alloc = try_place(&cluster, PolicyKind::Static, 8, 100 * 1024).expect("fits");
        b.iter_batched(
            || cluster.clone(),
            |mut cl| {
                cl.start_job(JobId(9999), alloc.clone(), 6.0);
                cl.shrink_job(JobId(9999), 20 * 1024, 6.0);
                cl.finish_job(JobId(9999));
                black_box(cl.idle_count())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    let system = synthetic_system(Scale::Small, MemoryMix::half_large());
    let workload = synthetic_workload(Scale::Small, 0.5, 0.6, 42);
    for policy in PolicyKind::ALL {
        g.bench_function(format!("end_to_end_{policy}"), |b| {
            b.iter(|| {
                black_box(
                    Simulation::new(system.clone(), workload.clone(), policy)
                        .run()
                        .stats
                        .completed,
                )
            })
        });
    }
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    let samples: Vec<f64> = (0..100_000)
        .map(|i| ((i * 48_271) % 1_000_003) as f64)
        .collect();
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("ecdf_build_100k", |b| {
        b.iter(|| black_box(Ecdf::new(samples.clone()).unwrap()))
    });
    let e = Ecdf::new(samples).unwrap();
    g.throughput(Throughput::Elements(1));
    g.bench_function("ecdf_quantiles", |b| {
        b.iter(|| black_box((e.quantile(0.5), e.quantile(0.95), e.eval(500_000.0))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_placement,
    bench_sched_pass,
    bench_ledger,
    bench_simulation,
    bench_metrics
);
criterion_main!(benches);
