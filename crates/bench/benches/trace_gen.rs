//! Benchmarks of the trace-generation substrate: the CIRNE model, the
//! full Fig. 3 pipeline, the Google-like pool, the Grizzly-like dataset
//! and RDP reduction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dmhpc_core::config::SystemConfig;
use dmhpc_model::rng::Rng64;
use dmhpc_traces::grizzly::{GrizzlyConfig, GrizzlyDataset};
use dmhpc_traces::rdp::rdp;
use dmhpc_traces::{CirneModel, GooglePool, PipelineConfig};
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

fn bench_cirne(c: &mut Criterion) {
    let model = CirneModel::default();
    let mut g = c.benchmark_group("trace_gen");
    g.throughput(Throughput::Elements(2000));
    g.bench_function("cirne_2000_jobs", |b| {
        b.iter(|| {
            let mut rng = Rng64::new(7);
            black_box(model.generate(&mut rng, 2000, 256))
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let cfg = PipelineConfig {
        job_count: 500,
        google_pool_size: 800,
        ..PipelineConfig::default()
    };
    let system = SystemConfig::with_nodes(256);
    let mut g = c.benchmark_group("trace_gen");
    g.sample_size(10);
    g.throughput(Throughput::Elements(500));
    g.bench_function("fig3_pipeline_500_jobs", |b| {
        b.iter(|| black_box(dmhpc_traces::build_synthetic(&cfg, &system)))
    });
    g.finish();
}

fn bench_google_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.bench_function("google_pool_1000", |b| {
        b.iter(|| black_box(GooglePool::synthetic(1000, 3)))
    });
    let pool = GooglePool::synthetic(1000, 3).filter_batch();
    g.bench_function("google_match", |b| {
        b.iter(|| black_box(pool.match_job(16, 7200.0, 40_000.0)))
    });
    g.finish();
}

fn bench_grizzly(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.sample_size(10);
    g.bench_function("grizzly_dataset_small", |b| {
        b.iter(|| black_box(GrizzlyDataset::synthesize(GrizzlyConfig::small(5))))
    });
    g.finish();
}

fn bench_rdp(c: &mut Criterion) {
    let pts: Vec<(f64, f64)> = (0..10_000)
        .map(|i| {
            let y = (i % 37) as f64 * 10.0 + if i % 97 == 0 { 5000.0 } else { 0.0 };
            (i as f64, y)
        })
        .collect();
    let mut g = c.benchmark_group("trace_gen");
    g.throughput(Throughput::Elements(pts.len() as u64));
    g.bench_function("rdp_10k_points", |b| b.iter(|| black_box(rdp(&pts, 50.0))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cirne, bench_pipeline, bench_google_pool, bench_grizzly, bench_rdp
}
criterion_main!(benches);
