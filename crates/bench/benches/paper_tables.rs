//! Benchmarks regenerating Tables 1–4 of the paper.
//!
//! Each bench group runs the full experiment at `Scale::Small` and
//! prints the regenerated table once, so `cargo bench` doubles as the
//! reproduction harness: the timing tells you what a rerun costs, the
//! printed table is the artefact.

use criterion::{criterion_group, criterion_main, Criterion};
use dmhpc_experiments::exp::tables;
use dmhpc_experiments::Scale;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_tables");

    println!(
        "\n== Table 1: trace sources ==\n{}",
        tables::table1().render()
    );
    g.bench_function("table1_trace_sources", |b| {
        b.iter(|| black_box(tables::table1()))
    });

    println!(
        "== Table 2: memory distribution ==\n{}",
        tables::table2(Scale::Small).render()
    );
    g.bench_function("table2_memory_distribution", |b| {
        b.iter(|| black_box(tables::table2(Scale::Small)))
    });

    println!(
        "== Table 3: job characteristics ==\n{}",
        tables::table3(Scale::Small).render()
    );
    g.bench_function("table3_job_characteristics", |b| {
        b.iter(|| black_box(tables::table3(Scale::Small)))
    });

    println!(
        "== Table 4: system configurations ==\n{}",
        tables::table4().render()
    );
    g.bench_function("table4_system_config", |b| {
        b.iter(|| black_box(tables::table4()))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tables
}
criterion_main!(benches);
