//! Benchmarks regenerating Figures 2 and 4–9 of the paper at
//! `Scale::Small`, printing each regenerated figure-table once.
//!
//! The heavyweight sweeps (Figs. 5 and 8 run ~300 simulations each) use
//! Criterion's minimum sample count; the printed tables are the
//! reproduction artefacts recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use dmhpc_experiments::exp::{fig2, fig4, fig5, fig6, fig7, fig8, fig9};
use dmhpc_experiments::Scale;
use std::hint::black_box;
use std::time::Duration;

const S: Scale = Scale::Small;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8))
}

fn bench_fig2(c: &mut Criterion) {
    let f = fig2::run(S, 0);
    println!("\n== Figure 2: week sampling ==\n{}", f.table().render());
    c.bench_function("fig2_week_sampling", |b| {
        b.iter(|| black_box(fig2::run(S, 0)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let f = fig4::run(S, 0);
    println!("== Figure 4a (avg) ==\n{}", f.avg_table().render());
    println!("== Figure 4b (max) ==\n{}", f.max_table().render());
    c.bench_function("fig4_memory_heatmap", |b| {
        b.iter(|| black_box(fig4::run(S, 0)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let f = fig5::run(S, 0);
    println!(
        "== Figure 5: normalized throughput ==\n{}",
        f.table().render()
    );
    if let Some((trace, over, mem, gain)) = f.max_dynamic_gain() {
        println!(
            "max dynamic gain: +{:.1}% ({trace}, +{:.0}%, {mem}% mem)\n",
            gain * 100.0,
            over * 100.0
        );
    }
    c.bench_function("fig5_throughput", |b| b.iter(|| black_box(fig5::run(S, 0))));
}

fn bench_fig6(c: &mut Criterion) {
    let f = fig6::run(S, 0);
    println!(
        "== Figure 6: response-time quantiles ==\n{}",
        f.table().render()
    );
    c.bench_function("fig6_response_time", |b| {
        b.iter(|| black_box(fig6::run(S, 0)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let f = fig7::run(S, 0);
    println!(
        "== Figure 7: throughput per dollar ==\n{}",
        f.table().render()
    );
    c.bench_function("fig7_cost_benefit", |b| {
        b.iter(|| black_box(fig7::run(S, 0)))
    });
}

fn bench_fig8_and_9(c: &mut Criterion) {
    let f8 = fig8::run(S, 0);
    println!(
        "== Figure 8: overestimation sweep ==\n{}",
        f8.table().render()
    );
    let f9 = fig9::derive(&f8, "large 50%");
    println!("== Figure 9: min memory @95% ==\n{}", f9.table().render());
    c.bench_function("fig8_overestimation", |b| {
        b.iter(|| black_box(fig8::run(S, 0)))
    });
    c.bench_function("fig9_min_memory", |b| {
        b.iter(|| black_box(fig9::derive(&f8, "large 50%")))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig2, bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig8_and_9
}
criterion_main!(benches);
