//! Benchmarks of the dynamic-memory update loop: the monotone
//! trace-cursor sampler against the full-scan reference, and whole
//! stress runs on the hold fast path against the always-decide
//! reference twin. The CLI twin (`dmhpc bench-dynloop`) gates the
//! phase-level speedup into `BENCH_sched.json`; this group gives the
//! statistical view of the same two seams.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dmhpc_core::cluster::MemoryMix;
use dmhpc_core::config::RestartStrategy;
use dmhpc_core::dynmem::Monitor;
use dmhpc_core::faults::FaultConfig;
use dmhpc_core::job::MemoryUsageTrace;
use dmhpc_core::policy::PolicySpec;
use dmhpc_core::sim::SimBuilder;
use dmhpc_experiments::scenario::{dynloop_stress_workload, synthetic_system};
use dmhpc_experiments::Scale;
use std::hint::black_box;
use std::sync::Arc;

/// A dense sawtooth trace: the worst case for the full-scan sampler
/// (every sample rescans from progress 0) and the amortized-O(1) case
/// for the cursor sampler.
fn dense_trace(n: usize) -> MemoryUsageTrace {
    let points: Vec<(f64, u64)> = (0..n)
        .map(|i| {
            let p = i as f64 / n as f64;
            (p, 1024 + ((i * 7919) % 4096) as u64)
        })
        .collect();
    MemoryUsageTrace::new(points).expect("valid trace")
}

fn bench_sampler(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynloop_sampler");
    let monitor = Monitor::new(300.0).expect("monitor");
    let base = 36_000.0;
    // ~120 five-minute updates over the run, like a long HPC job.
    let samples: Vec<f64> = (0..120).map(|i| i as f64 / 120.0).collect();
    for &n in &[256usize, 4096] {
        let trace = dense_trace(n);
        g.throughput(Throughput::Elements(samples.len() as u64));
        g.bench_function(format!("full_scan_{n}pts"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in &samples {
                    acc ^= monitor.sample_demand(&trace, p, 1.0, base);
                }
                black_box(acc)
            })
        });
        g.bench_function(format!("cursor_{n}pts"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                let mut cursor = 0usize;
                for &p in &samples {
                    acc ^= monitor.sample_demand_at(&trace, p, 1.0, base, &mut cursor);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_update_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynloop_update_loop");
    g.sample_size(10);
    let system = synthetic_system(Scale::Small, MemoryMix::new(64 * 1024, 128 * 1024, 0.25))
        .with_restart(RestartStrategy::CheckpointRestart)
        .with_faults(FaultConfig::none());
    let workload = Arc::new(dynloop_stress_workload(Scale::Small, 0.5, 0.6, 0xD7));
    for (label, reference) in [("fast_path", false), ("reference_twin", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    SimBuilder::new(system.clone(), Arc::clone(&workload))
                        .policy(PolicySpec::Dynamic)
                        .seed(0xD7)
                        .reference_dynloop(reference)
                        .build()
                        .run()
                        .stats
                        .completed,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(bench_dynloop, bench_sampler, bench_update_loop);
criterion_main!(bench_dynloop);
