//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! restart strategy, memory-update interval, lend cap, and backfill
//! depth — each as a timed run of the stress scenario, with the
//! resulting policy metrics printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use dmhpc_core::cluster::MemoryMix;
use dmhpc_core::config::RestartStrategy;
use dmhpc_core::policy::PolicyKind;
use dmhpc_core::sim::Simulation;
use dmhpc_experiments::exp::ablations;
use dmhpc_experiments::scenario::{synthetic_system, synthetic_workload};
use dmhpc_experiments::Scale;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8))
}

fn bench_full_suite(c: &mut Criterion) {
    let a = ablations::run(Scale::Small, 0);
    println!("\n== Ablation suite ==\n{}", a.table().render());
    c.bench_function("ablation_suite", |b| {
        b.iter(|| black_box(ablations::run(Scale::Small, 0)))
    });
}

fn bench_restart_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("restart_strategy");
    let workload = synthetic_workload(Scale::Small, 0.5, 1.0, 77);
    for (name, strat) in [
        ("fail_restart", RestartStrategy::FailRestart),
        ("checkpoint_restart", RestartStrategy::CheckpointRestart),
    ] {
        let system = synthetic_system(Scale::Small, MemoryMix::new(64 * 1024, 128 * 1024, 0.25))
            .with_restart(strat);
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Simulation::new(system.clone(), workload.clone(), PolicyKind::Dynamic)
                        .run()
                        .stats
                        .oom_kills,
                )
            })
        });
    }
    g.finish();
}

fn bench_update_intervals(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_interval");
    let workload = synthetic_workload(Scale::Small, 0.5, 0.6, 78);
    for secs in [60.0, 300.0, 1800.0] {
        let system = synthetic_system(Scale::Small, MemoryMix::new(64 * 1024, 128 * 1024, 0.25))
            .with_update_interval(secs);
        g.bench_function(format!("{secs:.0}s"), |b| {
            b.iter(|| {
                black_box(
                    Simulation::new(system.clone(), workload.clone(), PolicyKind::Dynamic)
                        .run()
                        .stats
                        .throughput_jps,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_full_suite, bench_restart_strategies, bench_update_intervals
}
criterion_main!(benches);
