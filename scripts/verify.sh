#!/usr/bin/env bash
# Full verification flow: tier-1 (build + root tests), the complete
# workspace suite, lints as errors, and formatting. CI and pre-commit
# both call this; keep it in sync with ROADMAP.md's tier-1 definition.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release
# The smoke groups below drive the release CLI; build every workspace
# member so target/release/dmhpc exists even on a cold target dir.
cargo build --release --workspace

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== fault-injection test group =="
cargo test -q --test fault_injection --test determinism_golden

echo "== fault-sweep smoke (tiny, must stay deterministic) =="
./target/release/dmhpc fault-sweep --scale small --threads 0 --csv > /tmp/fault_sweep_a.csv
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv > /tmp/fault_sweep_b.csv
cmp /tmp/fault_sweep_a.csv /tmp/fault_sweep_b.csv
rm -f /tmp/fault_sweep_a.csv /tmp/fault_sweep_b.csv

echo "== policy-sweep smoke (all six specs, threads must not change bits) =="
POLICIES="baseline,static,dynamic,predictive:history=on,overcommit:factor=0.8,conservative:quantum=4096"
./target/release/dmhpc fault-sweep --scale small --threads 1 --csv --policies "$POLICIES" > /tmp/policy_sweep_a.csv
./target/release/dmhpc fault-sweep --scale small --threads 4 --csv --policies "$POLICIES" > /tmp/policy_sweep_b.csv
cmp /tmp/policy_sweep_a.csv /tmp/policy_sweep_b.csv
# All six policies must actually appear in the output.
for name in baseline static dynamic predictive overcommit conservative; do
    grep -q "$name" /tmp/policy_sweep_a.csv
done
rm -f /tmp/policy_sweep_a.csv /tmp/policy_sweep_b.csv

echo "== topology smoke (flat is the default bit-for-bit; racks leg is thread-invariant) =="
# The registry subcommand knows both fabric shapes. (To a file, not a
# pipe: grep -q exits at first match and the closed pipe would kill
# the CLI mid-print.)
./target/release/dmhpc topologies > /tmp/topo_registry.txt
grep -q "flat" /tmp/topo_registry.txt
grep -q "racks" /tmp/topo_registry.txt
rm -f /tmp/topo_registry.txt
# An explicit --topology flat must be byte-identical to no flag at all:
# the flat topology IS the pre-topology behavior.
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv > /tmp/topo_default.csv
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv --topology flat > /tmp/topo_flat.csv
cmp /tmp/topo_default.csv /tmp/topo_flat.csv
# One racked sweep leg: rows carry the spec, and thread count must not
# change the bits on the rack-aware lender path either.
./target/release/dmhpc fault-sweep --scale small --threads 1 --csv --topology "flat,racks:size=16" > /tmp/topo_racks_a.csv
./target/release/dmhpc fault-sweep --scale small --threads 4 --csv --topology "flat,racks:size=16" > /tmp/topo_racks_b.csv
cmp /tmp/topo_racks_a.csv /tmp/topo_racks_b.csv
grep -q "racks:size=16" /tmp/topo_racks_a.csv
rm -f /tmp/topo_default.csv /tmp/topo_flat.csv /tmp/topo_racks_a.csv /tmp/topo_racks_b.csv

echo "== bench-huge smoke (trimmed stress leg: gate + threads-1-vs-N bits) =="
./target/release/dmhpc bench-huge --smoke --threads 1 \
    --out /tmp/bench_huge_a.json --points-out /tmp/bench_huge_a.csv
./target/release/dmhpc bench-huge --smoke --threads 4 \
    --out /tmp/bench_huge_b.json --points-out /tmp/bench_huge_b.csv
# The aggregated sweep points must be byte-identical across thread
# counts (the zero-copy pipeline may not change simulated bits).
cmp /tmp/bench_huge_a.csv /tmp/bench_huge_b.csv
grep -q '"pass": true' /tmp/bench_huge_a.json
rm -f /tmp/bench_huge_a.json /tmp/bench_huge_b.json \
      /tmp/bench_huge_a.csv /tmp/bench_huge_b.csv

echo "== bench-dynloop smoke (fast-path gate + threads-1-vs-4 bits) =="
# Threads-1 leg carries the timing gate: the dynloop-phase speedup of
# the hold fast path over the always-decide reference twin must clear
# the 1.5x acceptance bar with bit-identical outcomes.
./target/release/dmhpc bench-dynloop --smoke --threads 1 \
    --out /tmp/bench_dynloop_a.json --points-out /tmp/bench_dynloop_a.csv
# Threads-4 leg exists for the determinism cross-check (thread count
# must not change simulated bits); --no-gate keeps the timing bar out
# of its exit status, since wall-clock ratios after a multi-threaded
# sweep are not meaningful. Identity divergence still fails it.
./target/release/dmhpc bench-dynloop --smoke --threads 4 --no-gate \
    --out /tmp/bench_dynloop_b.json --points-out /tmp/bench_dynloop_b.csv
cmp /tmp/bench_dynloop_a.csv /tmp/bench_dynloop_b.csv
grep -q '"pass": true' /tmp/bench_dynloop_a.json
rm -f /tmp/bench_dynloop_a.json /tmp/bench_dynloop_b.json \
      /tmp/bench_dynloop_a.csv /tmp/bench_dynloop_b.csv

echo "== durable-sweep smoke (journal, interrupt at 75, resume, bit-identical) =="
M=/tmp/durable_sweep.jsonl
rm -f "$M"
# Reference: the same sweep uninterrupted.
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv > /tmp/durable_ref.csv
# Interrupted run: --point-limit is the deterministic stand-in for
# Ctrl-C — drain after 3 points, flush the manifest, exit 75.
code=0
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv \
    --manifest "$M" --point-limit 3 > /tmp/durable_int.csv 2> /tmp/durable_int.err || code=$?
[ "$code" -eq 75 ] || { echo "expected interrupted exit 75, got $code"; exit 1; }
[ ! -s /tmp/durable_int.csv ] || { echo "interrupted run must not emit a partial CSV"; exit 1; }
grep -q "interrupted:" /tmp/durable_int.err
# Resume: skip journaled points, finish the rest, reproduce the bytes.
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv --resume "$M" > /tmp/durable_res.csv
cmp /tmp/durable_ref.csv /tmp/durable_res.csv
# The journal must report itself fully drained. (To a file, not a
# pipe: grep -q exits at first match and the closed pipe would kill
# the CLI mid-print — same workaround as the topology smoke above.)
./target/release/dmhpc sweep-status "$M" > /tmp/durable_status.txt
grep -q "pending 0" /tmp/durable_status.txt
rm -f "$M" /tmp/durable_ref.csv /tmp/durable_res.csv /tmp/durable_int.csv \
      /tmp/durable_int.err /tmp/durable_status.txt

echo "== telemetry smoke (off by default, bit-inert, byte-deterministic exports) =="
# Off by default: a telemetry-flagged sweep must emit the exact CSV of
# an unflagged one (gauges and the profiler may not touch outcomes).
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv > /tmp/telem_off.csv
./target/release/dmhpc fault-sweep --scale small --threads 2 --csv --telemetry > /tmp/telem_on.csv
cmp /tmp/telem_off.csv /tmp/telem_on.csv
# The report subcommand exports every format; equal seeds must produce
# byte-identical series (the wall-clock profile never enters them).
./target/release/dmhpc report --scale small --format prom --out /tmp/telem.prom --quiet
for family in dmhpc_queue_depth dmhpc_pool_util dmhpc_borrowed_mb dmhpc_oom_kills; do
    grep -q "$family" /tmp/telem.prom
done
./target/release/dmhpc report --scale small --format csv --out /tmp/telem_a.csv --quiet
./target/release/dmhpc report --scale small --format csv --out /tmp/telem_b.csv --quiet
cmp /tmp/telem_a.csv /tmp/telem_b.csv
# Telemetry-flagged durable points journal their phase profile and
# sweep-status renders the breakdown.
rm -f /tmp/telem_sweep.jsonl
./target/release/dmhpc fault-sweep --scale small --fault-profile light --csv \
    --telemetry --manifest /tmp/telem_sweep.jsonl > /dev/null 2>&1
./target/release/dmhpc sweep-status /tmp/telem_sweep.jsonl > /tmp/telem_status.txt
grep -q "phase-time breakdown" /tmp/telem_status.txt
rm -f /tmp/telem_off.csv /tmp/telem_on.csv /tmp/telem.prom \
      /tmp/telem_a.csv /tmp/telem_b.csv /tmp/telem_sweep.jsonl /tmp/telem_status.txt

echo "== trace smoke (JSONL parses, sim-time monotone, diff pinpoints) =="
./target/release/dmhpc trace-run --scale small --fault-profile heavy --out /tmp/trace_smoke.jsonl
./target/release/dmhpc trace-run --check /tmp/trace_smoke.jsonl
./target/release/dmhpc trace-run --scale small --fault-profile heavy --diff 17,18 > /tmp/trace_diff.txt
grep -q "diverge at event" /tmp/trace_diff.txt
rm -f /tmp/trace_smoke.jsonl /tmp/trace_diff.txt

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --workspace

echo "== rustfmt check =="
cargo fmt --check

echo "verify: all green"
