//! # dmhpc — Dynamic Memory Provisioning on Disaggregated HPC Systems
//!
//! Facade crate for the reproduction of Zacarias, Carpenter & Petrucci,
//! *Dynamic Memory Provisioning on Disaggregated HPC Systems* (SC-W 2023).
//!
//! This crate re-exports the workspace's public API so downstream users can
//! depend on a single crate:
//!
//! * [`model`] — the contention-aware slowdown model (sensitivity curves,
//!   contentiousness, synthetic application pool);
//! * [`core`] — the discrete-event cluster simulator, node/memory ledgers,
//!   scheduler, and the Baseline / Static / Dynamic allocation policies;
//! * [`traces`] — SWF parsing, the CIRNE workload model, Grizzly-like and
//!   Google-like synthetic datasets, the Archer request distribution, RDP
//!   trace reduction, and the Fig. 3 matching pipeline;
//! * [`metrics`] — throughput, response-time ECDF, quantiles, utilisation
//!   and the cost model;
//! * [`experiments`] — runners that regenerate every table and figure of
//!   the paper.
//!
//! ## Quickstart
//!
//! ```
//! use dmhpc::prelude::*;
//!
//! // Generate a small workload, simulate it under the dynamic policy,
//! // and report throughput.
//! let system = SystemConfig::synthetic_1024().with_memory_mix(MemoryMix::half_large());
//! let workload = WorkloadBuilder::new(4242)
//!     .jobs(200)
//!     .large_job_fraction(0.5)
//!     .overestimation(0.6)
//!     .build_for(&system);
//! let outcome = SimBuilder::new(system, workload)
//!     .policy(PolicySpec::Dynamic)
//!     .seed(4242)
//!     .run();
//! assert!(outcome.stats.completed > 0);
//! ```

pub use dmhpc_core as core;
pub use dmhpc_experiments as experiments;
pub use dmhpc_metrics as metrics;
pub use dmhpc_model as model;
pub use dmhpc_traces as traces;

/// Convenience re-exports of the most frequently used types.
pub mod prelude {
    pub use dmhpc_core::cluster::{MemoryMix, TopologySpec};
    pub use dmhpc_core::config::SystemConfig;
    pub use dmhpc_core::job::{Job, JobId, MemoryUsageTrace};
    pub use dmhpc_core::policy::{PolicyKind, PolicySpec};
    pub use dmhpc_core::sim::{SimBuilder, Simulation, SimulationOutcome};
    pub use dmhpc_metrics::ecdf::Ecdf;
    pub use dmhpc_model::{AppProfile, ContentionModel, ProfilePool, SensitivityCurve};
    pub use dmhpc_traces::workload::WorkloadBuilder;
}
